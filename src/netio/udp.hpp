#pragma once
// Wire I/O primitives for the sFlow front-end (DESIGN.md §11).
//
// UdpSocket is a thin RAII wrapper over an IPv4/UDP socket: bind with a
// sized receive buffer (plus SO_RXQ_OVFL so kernel-side drops become a
// counter instead of silence), connect+send for the load-generator side.
// BatchReceiver abstracts the batched receive syscall strategy — the
// default backend amortizes syscall cost over a recvmmsg() vector the
// same way runtime/batch.hpp amortizes ring cost over record batches; an
// optional io_uring backend (SCRUBBER_IO_URING, see uring.cpp) moves the
// batching into a kernel submission queue.
//
// Also here: the framing helpers shared by listener and load generator —
// the end-of-stream FIN sentinel (UDP has no FIN of its own; the load
// generator repeats a magic trailer datagram carrying the total count so
// the listener knows both *that* and *how much* it should have seen) and
// the sFlow header peek that reads the export-uptime minute straight off
// the wire bytes without a full decode (the BGP/control interleave hook
// needs the minute before the datagram enters the engine).

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/wire_pool.hpp"

namespace scrubber::netio {

/// Error thrown on socket/syscall failures (message carries errno text).
class NetioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// RAII IPv4/UDP socket.
class UdpSocket {
 public:
  UdpSocket();
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Binds to `address:port` (port 0 = kernel-assigned, see local_port()),
  /// sizes the receive buffer, and enables the SO_RXQ_OVFL drop counter.
  void bind(const std::string& address, std::uint16_t port, int rcvbuf_bytes);

  /// Connects the socket to a remote `address:port` so send() needs no
  /// per-datagram address resolution (the load-generator hot path).
  void connect(const std::string& address, std::uint16_t port);

  /// Sends one datagram on a connected socket.
  void send(std::span<const std::uint8_t> bytes);

  /// The locally bound port (resolves kernel-assigned port 0 binds).
  [[nodiscard]] std::uint16_t local_port() const;

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
};

/// One received datagram. Without a buffer pool, `data` views scratch
/// storage owned by the BatchReceiver, valid only until its next
/// recv_batch() call. With a pool, `slot` owns the pooled buffer `data`
/// points into — move the slot onward (Engine::push_wire) for the
/// zero-copy path, or let it drop to recycle. Move-only once filled.
struct RecvFrame {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  runtime::WireSlot slot;

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return {data, size};
  }
};

/// Batched datagram receive, backend-agnostic.
class BatchReceiver {
 public:
  virtual ~BatchReceiver() = default;

  /// Waits up to `timeout_ms` for traffic, then harvests up to
  /// `frames.size()` datagrams in one batch. Returns the number received
  /// (0 on timeout). Frames stay valid until the next call.
  virtual std::size_t recv_batch(std::span<RecvFrame> frames,
                                 int timeout_ms) = 0;

  /// Datagrams the kernel dropped on the socket buffer (SO_RXQ_OVFL),
  /// cumulative — the wire loss that would otherwise be silent.
  [[nodiscard]] virtual std::uint64_t kernel_drops() const noexcept = 0;

  [[nodiscard]] virtual const char* backend_name() const noexcept = 0;
};

/// recvmmsg()-based receiver: poll() for readiness, then drain up to
/// `batch_msgs` datagrams in a single syscall. With a non-null `pool` the
/// kernel scatters each datagram straight into a pooled slot (handed out
/// via RecvFrame::slot); when the pool runs dry the receiver falls back
/// to its scratch storage for that message.
[[nodiscard]] std::unique_ptr<BatchReceiver> make_mmsg_receiver(
    UdpSocket& socket, std::size_t batch_msgs, std::size_t max_datagram_bytes,
    runtime::WireBufferPool* pool = nullptr);

#if SCRUBBER_IO_URING
/// io_uring-based receiver: `batch_msgs` RECVMSG submissions stay armed in
/// the kernel; completions are harvested from the completion ring. Returns
/// nullptr when the kernel refuses (old kernel, seccomp) — callers fall
/// back to make_mmsg_receiver. `pool` as in make_mmsg_receiver; pooled
/// buffers stay pinned while their submission is armed in the kernel.
[[nodiscard]] std::unique_ptr<BatchReceiver> make_uring_receiver(
    UdpSocket& socket, std::size_t batch_msgs, std::size_t max_datagram_bytes,
    runtime::WireBufferPool* pool = nullptr);
#endif  // SCRUBBER_IO_URING

// --- wire framing helpers -------------------------------------------------

/// Magic prefix of the end-of-stream sentinel datagram. Never collides
/// with sFlow: a v5 datagram starts with the big-endian word 5.
inline constexpr std::array<std::uint8_t, 8> kFinMagic = {
    'S', 'C', 'R', 'U', 'B', 'F', 'I', 'N'};

/// Sentinel payload size: magic + big-endian u64 total datagram count.
inline constexpr std::size_t kFinSentinelBytes = kFinMagic.size() + 8;

/// Encodes the FIN sentinel carrying the total number of data datagrams
/// the sender put on the wire before it.
[[nodiscard]] std::vector<std::uint8_t> encode_fin_sentinel(
    std::uint64_t total_datagrams);

// scrubber-hot-begin
/// True iff `bytes` is a FIN sentinel (checked per received datagram).
[[nodiscard]] inline bool is_fin_sentinel(
    std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() != kFinSentinelBytes) return false;
  for (std::size_t i = 0; i < kFinMagic.size(); ++i) {
    if (bytes[i] != kFinMagic[i]) return false;
  }
  return true;
}

/// Total-datagram count carried by a FIN sentinel (is_fin_sentinel first).
[[nodiscard]] inline std::uint64_t fin_sentinel_total(
    std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = kFinMagic.size(); i < kFinSentinelBytes; ++i) {
    total = (total << 8) | bytes[i];
  }
  return total;
}

/// Reads the export-uptime minute from raw sFlow v5 wire bytes without
/// decoding: header layout is version, address family, agent, sub-agent,
/// sequence, uptime_ms — six big-endian words, uptime at bytes [20, 24).
/// Returns nullopt when the buffer is too short to carry the header.
[[nodiscard]] inline std::optional<std::uint32_t> peek_sflow_minute(
    std::span<const std::uint8_t> bytes) noexcept {
  constexpr std::size_t kUptimeOffset = 20;
  if (bytes.size() < kUptimeOffset + 4) return std::nullopt;
  const std::uint32_t uptime_ms = (std::uint32_t{bytes[kUptimeOffset]} << 24) |
                                  (std::uint32_t{bytes[kUptimeOffset + 1]} << 16) |
                                  (std::uint32_t{bytes[kUptimeOffset + 2]} << 8) |
                                  std::uint32_t{bytes[kUptimeOffset + 3]};
  return uptime_ms / 60'000;
}
// scrubber-hot-end

}  // namespace scrubber::netio
