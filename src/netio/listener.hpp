#pragma once
// UDP sFlow listener: the wire front-end of the streaming engine
// (DESIGN.md §11).
//
//   NIC/loopback ─► UdpSocket ─► BatchReceiver (recvmmsg | io_uring)
//                      │ batch of wire datagrams
//                      ▼
//             UdpListener::run()  ──►  Engine::push_wire  ─► decode → …
//
// The listener thread is the engine's single producer: every push_wire,
// push_bgp (via the minute feed, below) and the final finish() happen on
// the thread that calls run(), so the SPSC producer contract holds
// without locks. Malformed wire bytes are pushed through anyway — the
// engine's fuzz-hardened decode stage counts them as decode_errors and
// drops them; the listener never parses untrusted bytes beyond a
// length-checked 4-byte peek. Wire loss is never silent: kernel
// socket-buffer drops surface via SO_RXQ_OVFL, ring-full rejections under
// the kDrop policy are counted on the listener's stage counters, and the
// FIN sentinel carries the sender's total so the end-of-run summary can
// say exactly how many datagrams the wire ate.
//
// The minute feed keeps the BGP control plane deterministic: before a
// datagram of export-minute M enters the engine, the feed callback runs
// with M so the caller can push every BGP update effective at or before M
// — the same interleaving the in-process flowgen feed produces, which is
// what makes wire-path verdicts bit-identical to in-process verdicts for
// the same trace (tests/netio/loopback_equivalence_test.cpp).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "netio/udp.hpp"
#include "runtime/counters.hpp"
#include "runtime/engine.hpp"

namespace scrubber::netio {

/// Receive-backend selection; kAuto prefers io_uring when compiled in and
/// the kernel cooperates, falling back to recvmmsg.
enum class RecvBackend { kAuto, kRecvmmsg, kIoUring };

struct ListenerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;            ///< 0 = kernel-assigned (see port())
  std::size_t batch_msgs = 32;       ///< datagrams per receive batch
  /// Per-datagram buffer; must hold the largest datagram the exporter
  /// emits or the tail is truncated into a decode error. flows_to_datagrams
  /// packs up to 64 samples (~104 wire bytes each, ~6.7 KB total).
  std::size_t max_datagram_bytes = 8192;
  int rcvbuf_bytes = 1 << 22;        ///< socket buffer (absorbs bursts)
  int poll_interval_ms = 50;         ///< stop-flag check cadence when idle
  /// Give up after this long without a single datagram (0 = wait forever).
  /// A lost FIN sentinel then ends the run instead of hanging it.
  int idle_stop_ms = 0;
  RecvBackend backend = RecvBackend::kAuto;
  /// After the FIN sentinel, drain and finish() the engine on the listener
  /// thread (the producer thread, per the engine contract).
  bool finish_engine_on_fin = true;
};

/// Point-in-time listener statistics.
struct ListenerSnapshot {
  runtime::StageSnapshot stage;     ///< "listen": in=received, out=pushed,
                                    ///< drops=ring-full rejections
  std::uint64_t bytes = 0;          ///< wire bytes received
  std::uint64_t recv_batches = 0;   ///< non-empty receive batches
  std::uint64_t kernel_drops = 0;   ///< socket-buffer drops (SO_RXQ_OVFL)
  /// Datagrams copied through the scratch path because the wire pool was
  /// dry at arm time (0 when the engine has no pool — every datagram
  /// copies then, but nothing "fell back").
  std::uint64_t pool_fallbacks = 0;
  bool fin_seen = false;
  std::uint64_t expected_datagrams = 0;  ///< sender total from the sentinel
  std::string backend;              ///< "recvmmsg" or "io_uring"

  /// One-line summary for the ixpd end-of-run report.
  [[nodiscard]] std::string summary() const;
};

class UdpListener {
 public:
  /// Called with a datagram's export minute before that datagram enters
  /// the engine; runs on the listener thread (= the producer thread), so
  /// it may call engine.push_bgp. Invoked only when the minute advances.
  using MinuteFeed = std::function<void(std::uint32_t minute)>;

  /// Binds immediately (throws NetioError on failure); receive starts
  /// with run() or start().
  UdpListener(ListenerConfig config, runtime::Engine& engine,
              MinuteFeed minute_feed = nullptr);
  ~UdpListener();

  UdpListener(const UdpListener&) = delete;
  UdpListener& operator=(const UdpListener&) = delete;

  /// The bound port (resolves config.port == 0).
  [[nodiscard]] std::uint16_t port() const { return socket_.local_port(); }

  /// Receive loop on the calling thread; returns after the FIN sentinel
  /// (engine finished, when configured), stop(), or the idle timeout.
  void run();

  /// run() on a dedicated thread; pair with join().
  void start();
  void join();

  /// Asks the receive loop to exit at the next poll tick.
  void stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] ListenerSnapshot stats() const;

 private:
  ListenerConfig config_;
  runtime::Engine& engine_;
  MinuteFeed minute_feed_;
  UdpSocket socket_;
  std::unique_ptr<BatchReceiver> receiver_;
  std::thread thread_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> fin_seen_{false};
  std::atomic<std::uint64_t> expected_datagrams_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> recv_batches_{0};
  std::atomic<std::uint64_t> pool_fallbacks_{0};
  runtime::StageCounters listen_;
};

}  // namespace scrubber::netio
