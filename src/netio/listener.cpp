#include "netio/listener.hpp"

#include <chrono>
#include <cstdio>
#include <vector>

namespace scrubber::netio {
namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string ListenerSnapshot::summary() const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "listener[%s]: datagrams=%llu bytes=%llu batches=%llu "
                "ring_full_drops=%llu kernel_drops=%llu pool_fallbacks=%llu "
                "fin=%d expected=%llu",
                backend.c_str(),
                static_cast<unsigned long long>(stage.items_in),
                static_cast<unsigned long long>(bytes),
                static_cast<unsigned long long>(recv_batches),
                static_cast<unsigned long long>(stage.drops),
                static_cast<unsigned long long>(kernel_drops),
                static_cast<unsigned long long>(pool_fallbacks), fin_seen,
                static_cast<unsigned long long>(expected_datagrams));
  return line;
}

UdpListener::UdpListener(ListenerConfig config, runtime::Engine& engine,
                         MinuteFeed minute_feed)
    : config_(std::move(config)),
      engine_(engine),
      minute_feed_(std::move(minute_feed)) {
  socket_.bind(config_.bind_address, config_.port, config_.rcvbuf_bytes);
#if SCRUBBER_IO_URING
  if (config_.backend == RecvBackend::kAuto ||
      config_.backend == RecvBackend::kIoUring) {
    receiver_ = make_uring_receiver(socket_, config_.batch_msgs,
                                    config_.max_datagram_bytes,
                                    engine_.wire_pool());
    if (receiver_ == nullptr && config_.backend == RecvBackend::kIoUring) {
      throw NetioError(
          "io_uring receive backend unavailable (kernel too old or "
          "sandboxed); use the recvmmsg backend");
    }
  }
#else
  if (config_.backend == RecvBackend::kIoUring) {
    throw NetioError(
        "io_uring backend requested but this build has SCRUBBER_IO_URING "
        "off; reconfigure with -DSCRUBBER_IO_URING=ON");
  }
#endif
  if (receiver_ == nullptr) {
    receiver_ = make_mmsg_receiver(socket_, config_.batch_msgs,
                                   config_.max_datagram_bytes,
                                   engine_.wire_pool());
  }
}

UdpListener::~UdpListener() {
  stop();
  if (thread_.joinable()) thread_.join();
}

void UdpListener::run() {
  std::vector<RecvFrame> frames(std::max<std::size_t>(1, config_.batch_msgs));
  std::uint32_t last_fed_minute = 0;
  bool fed_any = false;
  int idle_ms = 0;
  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) return;
    const std::size_t got = receiver_->recv_batch(
        std::span<RecvFrame>(frames.data(), frames.size()),
        config_.poll_interval_ms);
    if (got == 0) {
      if (config_.idle_stop_ms > 0) {
        idle_ms += config_.poll_interval_ms;
        if (idle_ms >= config_.idle_stop_ms) return;
      }
      continue;
    }
    idle_ms = 0;
    recv_batches_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t begin = now_ns();
    for (std::size_t i = 0; i < got; ++i) {
      const auto wire = frames[i].bytes();
      if (is_fin_sentinel(wire)) {
        expected_datagrams_.store(fin_sentinel_total(wire),
                                  std::memory_order_relaxed);
        fin_seen_.store(true, std::memory_order_relaxed);
        listen_.add_busy_ns(now_ns() - begin);
        if (config_.finish_engine_on_fin) {
          // This thread is the engine's producer; finishing here keeps
          // the single-producer contract (and drains every stage).
          engine_.finish();
        }
        return;
      }
      listen_.add_in();
      bytes_.fetch_add(wire.size(), std::memory_order_relaxed);
      // Control interleave: BGP updates effective at or before this
      // datagram's export minute must enter the engine first (the same
      // order the in-process feed produces).
      if (minute_feed_) {
        const auto minute = peek_sflow_minute(wire);
        if (minute && (!fed_any || *minute > last_fed_minute)) {
          fed_any = true;
          last_fed_minute = *minute;
          minute_feed_(*minute);
        }
      }
      bool pushed;
      if (frames[i].slot) {
        // Zero-copy: the datagram already sits in a pooled buffer; move
        // the slot into the engine (it recycles after the in-place walk,
        // or on drop when the rejected event is destroyed).
        pushed = engine_.push_wire(std::move(frames[i].slot));
      } else {
        if (engine_.wire_pool() != nullptr) {
          // Pool ran dry at arm time; this datagram pays the copy.
          pool_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        }
        pushed = engine_.push_wire(
            std::vector<std::uint8_t>(wire.begin(), wire.end()));
      }
      if (pushed) {
        listen_.add_out();
      } else {
        listen_.add_drop();  // ring full under kDrop: wire loss, counted
      }
    }
    listen_.add_busy_ns(now_ns() - begin);
  }
}

void UdpListener::start() {
  thread_ = std::thread([this] { run(); });
}

void UdpListener::join() {
  if (thread_.joinable()) thread_.join();
}

ListenerSnapshot UdpListener::stats() const {
  ListenerSnapshot snap;
  snap.stage = listen_.snapshot("listen");
  snap.bytes = bytes_.load(std::memory_order_relaxed);
  snap.recv_batches = recv_batches_.load(std::memory_order_relaxed);
  snap.kernel_drops = receiver_->kernel_drops();
  snap.pool_fallbacks = pool_fallbacks_.load(std::memory_order_relaxed);
  snap.fin_seen = fin_seen_.load(std::memory_order_relaxed);
  snap.expected_datagrams =
      expected_datagrams_.load(std::memory_order_relaxed);
  snap.backend = receiver_->backend_name();
  return snap;
}

}  // namespace scrubber::netio
