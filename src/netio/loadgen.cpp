#include "netio/loadgen.hpp"

#include <chrono>
#include <utility>

#include "util/rng.hpp"

namespace scrubber::netio {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t to_ns(Clock::time_point tp) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

}  // namespace

LoadGenerator::LoadGenerator(LoadGenConfig config,
                             std::vector<std::vector<std::uint8_t>> wire,
                             std::vector<std::uint32_t> minutes)
    : config_(std::move(config)),
      wire_(std::move(wire)),
      minutes_(std::move(minutes)) {}

LoadGenerator::~LoadGenerator() {
  if (thread_.joinable()) thread_.join();
}

LoadGenSummary LoadGenerator::run() {
  UdpSocket socket;
  socket.connect(config_.host, config_.port);

  // The whole inter-arrival schedule is drawn up front so the send loop is
  // pure pacing: deadline[i] = start + sum of the first i exponential gaps.
  // Drawing during the loop would let RNG cost perturb the schedule.
  std::vector<std::chrono::nanoseconds> offsets;
  if (config_.rate > 0.0) {
    util::Rng rng(config_.seed);
    offsets.resize(wire_.size());
    double cumulative_s = 0.0;
    for (auto& offset : offsets) {
      cumulative_s += rng.exponential(config_.rate);
      offset = std::chrono::nanoseconds(
          static_cast<std::int64_t>(cumulative_s * 1e9));
    }
  }

  stamps_.clear();
  if (config_.record_stamps) stamps_.reserve(wire_.size());

  LoadGenSummary summary;
  summary.target_rate = config_.rate;
  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < wire_.size(); ++i) {
    if (!offsets.empty()) {
      const Clock::time_point deadline = start + offsets[i];
      if (Clock::now() < deadline) {
        std::this_thread::sleep_until(deadline);
      } else {
        // Open loop: a missed deadline is recorded, never rescheduled —
        // the offered load must not adapt to a slow receiver.
        ++summary.behind;
      }
    }
    socket.send(wire_[i]);
    if (config_.record_stamps) {
      stamps_.push_back(SendStamp{minutes_[i], to_ns(Clock::now())});
    }
    ++summary.sent;
    summary.bytes += wire_[i].size();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  summary.wall_seconds = wall_s;
  summary.achieved_rate =
      wall_s > 0.0 ? static_cast<double>(summary.sent) / wall_s : 0.0;

  const auto sentinel = encode_fin_sentinel(summary.sent);
  for (unsigned r = 0; r < config_.fin_repeats; ++r) {
    if (r > 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    try {
      socket.send(sentinel);
    } catch (const NetioError&) {
      // A receiver that saw an earlier repeat may already be gone; the
      // connected socket then reports the ICMP port-unreachable as an
      // error. The sentinel did its job — not a failure.
      break;
    }
  }
  summary_ = summary;
  return summary;
}

void LoadGenerator::start() {
  thread_ = std::thread([this] { (void)run(); });
}

void LoadGenerator::join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace scrubber::netio
