// io_uring receive backend (SCRUBBER_IO_URING=ON), raw syscalls only — no
// liburing dependency, so the build stays self-contained. A fixed set of
// RECVMSG submissions stays armed in the kernel; recv_batch() re-arms the
// slots harvested last call, submits, then waits on the completion ring
// with an EXT_ARG timeout (no timeout SQEs to garbage-collect). Where
// recvmmsg pays one syscall per harvested batch, io_uring pays one per
// *submission* batch and harvests completions from shared memory.
//
// make_uring_receiver() returns nullptr — callers fall back to recvmmsg —
// when the kernel or sandbox refuses io_uring_setup or lacks the features
// this backend relies on (single-mmap rings, EXT_ARG enter; kernel 5.11+).

#include "netio/udp.hpp"

#if SCRUBBER_IO_URING

#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace scrubber::netio {
namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags, const void* arg, std::size_t arg_size) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, arg, arg_size));
}

std::uint32_t load_acquire(const std::uint32_t* word) noexcept {
  return std::atomic_ref<const std::uint32_t>(*word).load(
      std::memory_order_acquire);
}

void store_release(std::uint32_t* word, std::uint32_t value) noexcept {
  std::atomic_ref<std::uint32_t>(*word).store(value,
                                              std::memory_order_release);
}

class UringReceiver final : public BatchReceiver {
 public:
  UringReceiver(UdpSocket& socket, std::size_t batch_msgs,
                std::size_t max_datagram_bytes, runtime::WireBufferPool* pool)
      : socket_(socket),
        batch_(batch_msgs == 0 ? 1 : batch_msgs),
        max_bytes_(max_datagram_bytes),
        pool_(pool),
        storage_(batch_ * max_bytes_),
        controls_(batch_ * kControlBytes),
        iovecs_(batch_),
        messages_(batch_),
        armed_(batch_),
        needs_arm_(batch_, true) {
    for (std::size_t i = 0; i < batch_; ++i) {
      iovecs_[i].iov_base = storage_.data() + i * max_bytes_;
      iovecs_[i].iov_len = max_bytes_;
      messages_[i].msg_iov = &iovecs_[i];
      messages_[i].msg_iovlen = 1;
      messages_[i].msg_control = controls_.data() + i * kControlBytes;
      messages_[i].msg_controllen = kControlBytes;
    }
  }

  ~UringReceiver() override {
    if (sq_ring_ != MAP_FAILED) ::munmap(sq_ring_, ring_bytes_);
    if (sqes_ != MAP_FAILED) ::munmap(sqes_, sqe_bytes_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  /// Sets up the ring; false when io_uring is unavailable here.
  [[nodiscard]] bool init() {
    io_uring_params params{};
    // Power-of-two SQ depth covering the batch.
    unsigned entries = 1;
    while (entries < batch_) entries <<= 1;
    ring_fd_ = sys_io_uring_setup(entries, &params);
    if (ring_fd_ < 0) return false;
    constexpr unsigned kNeeded = IORING_FEAT_SINGLE_MMAP | IORING_FEAT_EXT_ARG;
    if ((params.features & kNeeded) != kNeeded) return false;

    const std::size_t sq_bytes =
        params.sq_off.array + params.sq_entries * sizeof(std::uint32_t);
    const std::size_t cq_bytes =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    ring_bytes_ = std::max(sq_bytes, cq_bytes);
    sq_ring_ = ::mmap(nullptr, ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) return false;
    sqe_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqes_ == MAP_FAILED) return false;

    auto* base = static_cast<std::uint8_t*>(sq_ring_);
    sq_head_ = reinterpret_cast<std::uint32_t*>(base + params.sq_off.head);
    sq_tail_ = reinterpret_cast<std::uint32_t*>(base + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<std::uint32_t*>(base + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<std::uint32_t*>(base + params.sq_off.array);
    cq_head_ = reinterpret_cast<std::uint32_t*>(base + params.cq_off.head);
    cq_tail_ = reinterpret_cast<std::uint32_t*>(base + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<std::uint32_t*>(base + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(base + params.cq_off.cqes);
    return true;
  }

  std::size_t recv_batch(std::span<RecvFrame> frames,
                         int timeout_ms) override {
    // Re-arm every slot harvested (or errored) last call, then submit.
    unsigned to_submit = 0;
    for (std::size_t slot = 0; slot < batch_; ++slot) {
      if (!needs_arm_[slot]) continue;
      arm_slot(slot);
      needs_arm_[slot] = false;
      ++to_submit;
    }
    if (completions_pending() == 0) {
      __kernel_timespec ts{};
      ts.tv_sec = timeout_ms / 1000;
      ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1'000'000;
      io_uring_getevents_arg arg{};
      arg.ts = reinterpret_cast<std::uint64_t>(&ts);
      const int rc = sys_io_uring_enter(
          ring_fd_, to_submit, /*min_complete=*/1,
          IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg, sizeof(arg));
      if (rc < 0 && errno != ETIME && errno != EINTR && errno != EBUSY) {
        throw NetioError(std::string("io_uring_enter: ") +
                         std::strerror(errno));
      }
    } else if (to_submit > 0) {
      // Completions already waiting: submit re-arms without sleeping.
      const int rc = sys_io_uring_enter(ring_fd_, to_submit, 0, 0, nullptr, 0);
      if (rc < 0 && errno != EINTR && errno != EBUSY) {
        throw NetioError(std::string("io_uring_enter(submit): ") +
                         std::strerror(errno));
      }
    }
    // Harvest whatever the completion ring holds, up to the frame window.
    std::size_t got = 0;
    std::uint32_t head = load_acquire(cq_head_);
    const std::uint32_t tail = load_acquire(cq_tail_);
    while (head != tail && got < frames.size()) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      const auto slot = static_cast<std::size_t>(cqe.user_data);
      if (cqe.res >= 0 && slot < batch_) {
        RecvFrame& frame = frames[got++];
        const auto bytes = static_cast<std::size_t>(cqe.res);
        if (armed_[slot]) {
          // The kernel wrote straight into the pooled buffer this slot
          // pinned while armed; hand it off and re-acquire at re-arm.
          armed_[slot].set_size(bytes);
          frame.data = armed_[slot].data();
          frame.size = bytes;
          frame.slot = std::move(armed_[slot]);
        } else {
          frame.data = storage_.data() + slot * max_bytes_;
          frame.size = bytes;
          frame.slot.release();
        }
        note_drop_counter(messages_[slot]);
      }
      if (slot < batch_) needs_arm_[slot] = true;
      ++head;
      store_release(cq_head_, head);
    }
    return got;
  }

  [[nodiscard]] std::uint64_t kernel_drops() const noexcept override {
    return kernel_drops_;
  }

  [[nodiscard]] const char* backend_name() const noexcept override {
    return "io_uring";
  }

 private:
  static constexpr std::size_t kControlBytes = 64;

  [[nodiscard]] std::uint32_t completions_pending() const noexcept {
    return load_acquire(cq_tail_) - load_acquire(cq_head_);
  }

  void arm_slot(std::size_t slot) noexcept {
    // Reset the lengths RECVMSG completion shrank, and stage a pooled
    // buffer when available — it stays pinned (owned by armed_[slot])
    // until the completion hands it off, so the kernel never writes into
    // a recycled buffer. Dry pool: scratch storage for this arming.
    if (pool_ != nullptr && !armed_[slot]) {
      armed_[slot] = pool_->try_acquire();
    }
    if (armed_[slot]) {
      iovecs_[slot].iov_base = armed_[slot].data();
      iovecs_[slot].iov_len = armed_[slot].capacity();
    } else {
      iovecs_[slot].iov_base = storage_.data() + slot * max_bytes_;
      iovecs_[slot].iov_len = max_bytes_;
    }
    messages_[slot].msg_iov = &iovecs_[slot];
    messages_[slot].msg_iovlen = 1;
    messages_[slot].msg_controllen = kControlBytes;
    const std::uint32_t tail = load_acquire(sq_tail_);
    const std::uint32_t index = tail & sq_mask_;
    auto* sqe = static_cast<io_uring_sqe*>(sqes_) + index;
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_RECVMSG;
    sqe->fd = socket_.fd();
    sqe->addr = reinterpret_cast<std::uint64_t>(&messages_[slot]);
    sqe->user_data = slot;
    sq_array_[index] = index;
    store_release(sq_tail_, tail + 1);
  }

  void note_drop_counter(msghdr& hdr) noexcept {
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&hdr); cmsg != nullptr;
         cmsg = CMSG_NXTHDR(&hdr, cmsg)) {
      if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SO_RXQ_OVFL) {
        std::uint32_t dropped = 0;
        std::memcpy(&dropped, CMSG_DATA(cmsg), sizeof(dropped));
        kernel_drops_ = dropped;
      }
    }
  }

  UdpSocket& socket_;
  std::size_t batch_;
  std::size_t max_bytes_;
  runtime::WireBufferPool* pool_;
  std::vector<std::uint8_t> storage_;
  std::vector<std::uint8_t> controls_;
  std::vector<iovec> iovecs_;
  std::vector<msghdr> messages_;
  std::vector<runtime::WireSlot> armed_;  ///< buffer pinned while armed
  std::vector<bool> needs_arm_;

  int ring_fd_ = -1;
  void* sq_ring_ = MAP_FAILED;
  void* sqes_ = MAP_FAILED;
  std::size_t ring_bytes_ = 0;
  std::size_t sqe_bytes_ = 0;
  std::uint32_t* sq_head_ = nullptr;
  std::uint32_t* sq_tail_ = nullptr;
  std::uint32_t sq_mask_ = 0;
  std::uint32_t* sq_array_ = nullptr;
  std::uint32_t* cq_head_ = nullptr;
  std::uint32_t* cq_tail_ = nullptr;
  std::uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  std::uint64_t kernel_drops_ = 0;
};

}  // namespace

std::unique_ptr<BatchReceiver> make_uring_receiver(
    UdpSocket& socket, std::size_t batch_msgs, std::size_t max_datagram_bytes,
    runtime::WireBufferPool* pool) {
  auto receiver = std::make_unique<UringReceiver>(socket, batch_msgs,
                                                  max_datagram_bytes, pool);
  if (!receiver->init()) return nullptr;
  return receiver;
}

}  // namespace scrubber::netio

#endif  // SCRUBBER_IO_URING
