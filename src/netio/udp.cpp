#include "netio/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace scrubber::netio {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw NetioError(std::string(what) + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw NetioError("invalid IPv4 address: " + address);
  }
  return addr;
}

}  // namespace

UdpSocket::UdpSocket() : fd_(::socket(AF_INET, SOCK_DGRAM, 0)) {
  if (fd_ < 0) throw_errno("socket(AF_INET, SOCK_DGRAM)");
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void UdpSocket::bind(const std::string& address, std::uint16_t port,
                     int rcvbuf_bytes) {
  if (rcvbuf_bytes > 0 &&
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof(rcvbuf_bytes)) != 0) {
    throw_errno("setsockopt(SO_RCVBUF)");
  }
  // Kernel-side socket-buffer drops become an ancillary counter on every
  // received datagram instead of silent loss.
  const int one = 1;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof(one)) != 0) {
    throw_errno("setsockopt(SO_RXQ_OVFL)");
  }
  const sockaddr_in addr = make_addr(address, port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("bind");
  }
}

void UdpSocket::connect(const std::string& address, std::uint16_t port) {
  const sockaddr_in addr = make_addr(address, port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("connect");
  }
}

void UdpSocket::send(std::span<const std::uint8_t> bytes) {
  for (;;) {
    const ssize_t sent = ::send(fd_, bytes.data(), bytes.size(), 0);
    if (sent >= 0) return;
    if (errno == EINTR) continue;
    if (errno == ENOBUFS || errno == EAGAIN) {
      // Loopback send-side pressure: retry rather than silently lose a
      // datagram the open-loop schedule already charged us for.
      continue;
    }
    throw_errno("send");
  }
}

std::uint16_t UdpSocket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

std::vector<std::uint8_t> encode_fin_sentinel(std::uint64_t total_datagrams) {
  std::vector<std::uint8_t> out(kFinSentinelBytes);
  std::memcpy(out.data(), kFinMagic.data(), kFinMagic.size());
  for (std::size_t i = 0; i < 8; ++i) {
    out[kFinMagic.size() + i] =
        static_cast<std::uint8_t>(total_datagrams >> (56 - 8 * i));
  }
  return out;
}

namespace {

/// recvmmsg() backend: one poll() for readiness, one recvmmsg() to drain
/// up to batch_msgs datagrams, SO_RXQ_OVFL control messages harvested for
/// the kernel-drop counter.
class MmsgReceiver final : public BatchReceiver {
 public:
  MmsgReceiver(UdpSocket& socket, std::size_t batch_msgs,
               std::size_t max_datagram_bytes, runtime::WireBufferPool* pool)
      : socket_(socket),
        batch_(batch_msgs == 0 ? 1 : batch_msgs),
        max_bytes_(max_datagram_bytes),
        pool_(pool),
        storage_(batch_ * max_bytes_),
        controls_(batch_ * kControlBytes),
        iovecs_(batch_),
        headers_(batch_),
        armed_(batch_) {
    for (std::size_t i = 0; i < batch_; ++i) {
      iovecs_[i].iov_base = storage_.data() + i * max_bytes_;
      iovecs_[i].iov_len = max_bytes_;
      headers_[i].msg_hdr.msg_iov = &iovecs_[i];
      headers_[i].msg_hdr.msg_iovlen = 1;
      headers_[i].msg_hdr.msg_control = controls_.data() + i * kControlBytes;
      headers_[i].msg_hdr.msg_controllen = kControlBytes;
    }
  }

  std::size_t recv_batch(std::span<RecvFrame> frames,
                         int timeout_ms) override {
    pollfd pfd{};
    pfd.fd = socket_.fd();
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      if (ready < 0 && errno != EINTR) throw_errno("poll");
      return 0;
    }
    const auto want =
        static_cast<unsigned>(std::min(frames.size(), batch_));
    // Reset control lengths (recvmmsg shrinks them per message) and point
    // each message at a pooled slot when one is available — the kernel
    // then scatters the datagram straight into the buffer that will ride
    // the input ring, copy-free. A dry pool falls back to scratch storage
    // for that message (the caller copies, counted as a pool fallback).
    for (std::size_t i = 0; i < want; ++i) {
      if (pool_ != nullptr && !armed_[i]) armed_[i] = pool_->try_acquire();
      if (armed_[i]) {
        iovecs_[i].iov_base = armed_[i].data();
        iovecs_[i].iov_len = armed_[i].capacity();
      } else {
        iovecs_[i].iov_base = storage_.data() + i * max_bytes_;
        iovecs_[i].iov_len = max_bytes_;
      }
      headers_[i].msg_hdr.msg_controllen = kControlBytes;
      headers_[i].msg_hdr.msg_iov = &iovecs_[i];
      headers_[i].msg_hdr.msg_iovlen = 1;
    }
    const int got = ::recvmmsg(socket_.fd(), headers_.data(), want,
                               MSG_DONTWAIT, nullptr);
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
      throw_errno("recvmmsg");
    }
    for (std::size_t i = 0; i < static_cast<std::size_t>(got); ++i) {
      RecvFrame& frame = frames[i];
      if (armed_[i]) {
        armed_[i].set_size(headers_[i].msg_len);
        frame.data = armed_[i].data();
        frame.size = headers_[i].msg_len;
        frame.slot = std::move(armed_[i]);  // next call re-acquires
      } else {
        frame.data = storage_.data() + i * max_bytes_;
        frame.size = headers_[i].msg_len;
        frame.slot.release();
      }
      note_drop_counter(headers_[i].msg_hdr);
    }
    return static_cast<std::size_t>(got);
  }

  [[nodiscard]] std::uint64_t kernel_drops() const noexcept override {
    return kernel_drops_;
  }

  [[nodiscard]] const char* backend_name() const noexcept override {
    return "recvmmsg";
  }

 private:
  static constexpr std::size_t kControlBytes = 64;

  void note_drop_counter(msghdr& hdr) noexcept {
    // SO_RXQ_OVFL delivers the cumulative drop count as ancillary data.
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&hdr); cmsg != nullptr;
         cmsg = CMSG_NXTHDR(&hdr, cmsg)) {
      if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SO_RXQ_OVFL) {
        std::uint32_t dropped = 0;
        std::memcpy(&dropped, CMSG_DATA(cmsg), sizeof(dropped));
        kernel_drops_ = dropped;
      }
    }
  }

  UdpSocket& socket_;
  std::size_t batch_;
  std::size_t max_bytes_;
  runtime::WireBufferPool* pool_;
  std::vector<std::uint8_t> storage_;
  std::vector<std::uint8_t> controls_;
  std::vector<iovec> iovecs_;
  std::vector<mmsghdr> headers_;
  std::vector<runtime::WireSlot> armed_;  ///< slot staged per message index
  std::uint64_t kernel_drops_ = 0;
};

}  // namespace

std::unique_ptr<BatchReceiver> make_mmsg_receiver(
    UdpSocket& socket, std::size_t batch_msgs, std::size_t max_datagram_bytes,
    runtime::WireBufferPool* pool) {
  return std::make_unique<MmsgReceiver>(socket, batch_msgs, max_datagram_bytes,
                                        pool);
}

}  // namespace scrubber::netio
