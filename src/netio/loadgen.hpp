#pragma once
// Open-loop sFlow load generator (DESIGN.md §11).
//
// Replays pre-encoded sFlow wire datagrams against a UDP listener at a
// configurable target rate with exponential inter-arrival times — the
// open-loop design of the mutated load generator: the send schedule is
// drawn up front from a seeded RNG and never reacts to the receiver, so
// a slow scrubber sees queueing (and its latency distribution degrades
// honestly) instead of silently throttling the offered load, which is
// the classic closed-loop measurement error.
//
// Every datagram's send completion is timestamped (steady clock, the
// same clock bench_latency uses on the receive side), so detection
// latency = minute-scored time − datagram send time joins on nothing
// but these stamps. After the data, the FIN sentinel (netio/udp.hpp) is
// repeated a few times carrying the total datagram count, letting the
// listener detect tail loss instead of hanging.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "netio/udp.hpp"

namespace scrubber::netio {

struct LoadGenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Target datagrams/sec; 0 sends as fast as the socket accepts.
  double rate = 0.0;
  /// Seed for the exponential inter-arrival schedule (deterministic).
  std::uint64_t seed = 1;
  /// FIN sentinel repeats (loss insurance; receiver stops at the first).
  unsigned fin_repeats = 3;
  /// Record per-datagram send timestamps (off saves memory on long runs).
  bool record_stamps = true;
};

/// One datagram's send record: its sFlow export minute and the steady
/// clock nanosecond its send() completed.
struct SendStamp {
  std::uint32_t minute = 0;
  std::uint64_t send_ns = 0;
};

struct LoadGenSummary {
  std::uint64_t sent = 0;          ///< data datagrams (sentinels excluded)
  std::uint64_t bytes = 0;
  std::uint64_t behind = 0;        ///< sends that missed their deadline
  double wall_seconds = 0.0;
  double target_rate = 0.0;        ///< 0 = unpaced
  double achieved_rate = 0.0;      ///< sent / wall
};

class LoadGenerator {
 public:
  /// Takes the pre-encoded wire datagrams (encode cost stays out of the
  /// send loop) and each datagram's export minute, index-aligned.
  LoadGenerator(LoadGenConfig config,
                std::vector<std::vector<std::uint8_t>> wire,
                std::vector<std::uint32_t> minutes);
  ~LoadGenerator();

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  /// Sends everything on the calling thread; returns the summary.
  LoadGenSummary run();

  /// run() on a dedicated thread; pair with join().
  void start();
  void join();

  /// Valid after run() or join().
  [[nodiscard]] const LoadGenSummary& summary() const noexcept {
    return summary_;
  }
  [[nodiscard]] const std::vector<SendStamp>& stamps() const noexcept {
    return stamps_;
  }

 private:
  LoadGenConfig config_;
  std::vector<std::vector<std::uint8_t>> wire_;
  std::vector<std::uint32_t> minutes_;
  std::vector<SendStamp> stamps_;
  LoadGenSummary summary_;
  std::thread thread_;
};

}  // namespace scrubber::netio
