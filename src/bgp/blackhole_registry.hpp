#pragma once
// Time-indexed registry of blackhole announcements.
//
// Flow labeling (§3 of the paper) asks, per sampled flow: "was the flow's
// destination IP covered by an active blackhole route during the flow's
// minute bin?". The registry stores announcement/withdrawal intervals per
// prefix and answers that query, as well as per-minute active counts used
// for Figure 3a-style analyses.

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "bgp/message.hpp"
#include "net/prefix_trie.hpp"

namespace scrubber::bgp {

/// Half-open activity interval [start, end) in minute bins; end is
/// `kOpenEnd` while the blackhole has not been withdrawn yet.
struct BlackholeInterval {
  static constexpr std::uint32_t kOpenEnd =
      std::numeric_limits<std::uint32_t>::max();

  std::uint32_t start = 0;
  std::uint32_t end = kOpenEnd;
  std::uint32_t origin_as = 0;

  [[nodiscard]] bool active_at(std::uint32_t minute) const noexcept {
    return minute >= start && minute < end;
  }
};

/// Registry of blackhole announcements with interval semantics.
class BlackholeRegistry {
 public:
  /// Records a blackhole announcement for `prefix` starting at `minute`.
  /// Re-announcing an already active prefix is a no-op (idempotent).
  void announce(const net::Ipv4Prefix& prefix, std::uint32_t minute,
                std::uint32_t origin_as = 0);

  /// Records a withdrawal at `minute`; closes the open interval if any.
  void withdraw(const net::Ipv4Prefix& prefix, std::uint32_t minute);

  /// Feeds a decoded BGP UPDATE observed at `minute`: blackhole-community
  /// announcements open intervals, withdrawals close them.
  void apply(const UpdateMessage& update, std::uint32_t minute);

  /// True when `ip` was covered by any active blackhole during `minute`.
  [[nodiscard]] bool is_blackholed(net::Ipv4Address ip,
                                   std::uint32_t minute) const;

  /// Most specific blackhole prefix covering `ip` active at `minute`.
  [[nodiscard]] std::optional<net::Ipv4Prefix> covering_blackhole(
      net::Ipv4Address ip, std::uint32_t minute) const;

  /// Number of blackhole prefixes active during `minute`.
  [[nodiscard]] std::size_t active_count(std::uint32_t minute) const;

  /// Total number of recorded announcement intervals.
  [[nodiscard]] std::size_t interval_count() const noexcept {
    return interval_count_;
  }

  /// Number of distinct prefixes ever blackholed.
  [[nodiscard]] std::size_t prefix_count() const noexcept { return trie_.size(); }

 private:
  net::PrefixTrie<std::vector<BlackholeInterval>> trie_;
  std::size_t interval_count_ = 0;
};

}  // namespace scrubber::bgp
