#include "bgp/rib.hpp"

namespace scrubber::bgp {

void Rib::apply(const UpdateMessage& update) {
  for (const auto& prefix : update.withdrawn) trie_.erase(prefix);
  if (update.announced.empty()) return;
  RouteEntry entry;
  entry.origin_as = update.origin_as();
  entry.next_hop = update.next_hop;
  entry.communities = update.communities;
  for (const auto& prefix : update.announced) {
    if (auto* existing = trie_.find_exact(prefix)) {
      *existing = entry;  // implicit replace of the previous path
    } else {
      trie_.insert(prefix, entry);
    }
  }
}

bool Rib::is_blackholed(net::Ipv4Address ip) const {
  for (const auto& [prefix, entry] : trie_.match_all(ip)) {
    if (entry->is_blackhole()) return true;
  }
  return false;
}

std::vector<net::Ipv4Prefix> Rib::blackhole_prefixes() const {
  std::vector<net::Ipv4Prefix> out;
  trie_.visit([&](const net::Ipv4Prefix& prefix, const RouteEntry& entry) {
    if (entry.is_blackhole()) out.push_back(prefix);
  });
  return out;
}

}  // namespace scrubber::bgp
