#include "bgp/blackhole_registry.hpp"

namespace scrubber::bgp {

void BlackholeRegistry::announce(const net::Ipv4Prefix& prefix,
                                 std::uint32_t minute, std::uint32_t origin_as) {
  auto* intervals = trie_.find_exact(prefix);
  if (intervals == nullptr) {
    trie_.insert(prefix, {});
    intervals = trie_.find_exact(prefix);
  }
  if (!intervals->empty() &&
      intervals->back().end == BlackholeInterval::kOpenEnd) {
    return;  // already active; idempotent re-announcement
  }
  intervals->push_back(BlackholeInterval{minute, BlackholeInterval::kOpenEnd,
                                         origin_as});
  ++interval_count_;
}

void BlackholeRegistry::withdraw(const net::Ipv4Prefix& prefix,
                                 std::uint32_t minute) {
  auto* intervals = trie_.find_exact(prefix);
  if (intervals == nullptr || intervals->empty()) return;
  auto& last = intervals->back();
  if (last.end == BlackholeInterval::kOpenEnd && minute >= last.start) {
    last.end = minute;
  }
}

void BlackholeRegistry::apply(const UpdateMessage& update, std::uint32_t minute) {
  if (update.is_blackhole_announcement()) {
    for (const auto& prefix : update.announced) {
      announce(prefix, minute, update.origin_as());
    }
  }
  for (const auto& prefix : update.withdrawn) withdraw(prefix, minute);
}

bool BlackholeRegistry::is_blackholed(net::Ipv4Address ip,
                                      std::uint32_t minute) const {
  for (const auto& [prefix, intervals] : trie_.match_all(ip)) {
    for (const auto& interval : *intervals) {
      if (interval.active_at(minute)) return true;
    }
  }
  return false;
}

std::optional<net::Ipv4Prefix> BlackholeRegistry::covering_blackhole(
    net::Ipv4Address ip, std::uint32_t minute) const {
  std::optional<net::Ipv4Prefix> best;
  for (const auto& [prefix, intervals] : trie_.match_all(ip)) {
    for (const auto& interval : *intervals) {
      if (interval.active_at(minute)) {
        best = prefix;  // match_all yields least specific first
        break;
      }
    }
  }
  return best;
}

std::size_t BlackholeRegistry::active_count(std::uint32_t minute) const {
  std::size_t count = 0;
  trie_.visit([&](const net::Ipv4Prefix&, const std::vector<BlackholeInterval>& v) {
    for (const auto& interval : v) {
      if (interval.active_at(minute)) {
        ++count;
        break;
      }
    }
  });
  return count;
}

}  // namespace scrubber::bgp
