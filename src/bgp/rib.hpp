#pragma once
// A simple Routing Information Base mirroring the IXP route server's view:
// prefixes with attributes, updated by BGP UPDATE messages, supporting
// longest-prefix-match resolution and enumeration of blackholed routes.

#include <cstdint>
#include <vector>

#include "bgp/message.hpp"
#include "net/prefix_trie.hpp"

namespace scrubber::bgp {

/// Attributes of one installed route.
struct RouteEntry {
  std::uint32_t origin_as = 0;
  net::Ipv4Address next_hop{};
  std::vector<Community> communities;

  [[nodiscard]] bool is_blackhole() const noexcept {
    for (const Community c : communities) {
      if (c == kBlackhole) return true;
    }
    return false;
  }

  friend bool operator==(const RouteEntry&, const RouteEntry&) = default;
};

/// Route server RIB. Single best path per prefix (IXP route servers
/// typically readvertise one path; path selection is out of scope).
class Rib {
 public:
  /// Applies an UPDATE: withdrawals first, then announcements (RFC 4271).
  void apply(const UpdateMessage& update);

  /// Longest-prefix-match resolution for a destination address.
  [[nodiscard]] const RouteEntry* resolve(net::Ipv4Address ip) const {
    return trie_.match(ip);
  }

  /// Exact-prefix lookup.
  [[nodiscard]] const RouteEntry* lookup(const net::Ipv4Prefix& prefix) const {
    return trie_.find_exact(prefix);
  }

  /// True when `ip` is covered by any installed blackhole route.
  [[nodiscard]] bool is_blackholed(net::Ipv4Address ip) const;

  /// All currently installed blackhole prefixes.
  [[nodiscard]] std::vector<net::Ipv4Prefix> blackhole_prefixes() const;

  [[nodiscard]] std::size_t size() const noexcept { return trie_.size(); }

 private:
  net::PrefixTrie<RouteEntry> trie_;
};

}  // namespace scrubber::bgp
