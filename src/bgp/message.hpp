#pragma once
// BGP-4 UPDATE messages (RFC 4271) with a real wire encoding.
//
// The blackhole capture pipeline listens to the IXP route server's BGP
// feed for announcements carrying the BLACKHOLE community. This module
// models UPDATE messages both logically (announced/withdrawn prefixes +
// path attributes) and as on-the-wire bytes, so the registry can be fed
// from recorded byte streams as well as from the simulator.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "bgp/community.hpp"
#include "net/ipv4.hpp"

namespace scrubber::bgp {

/// Error thrown when decoding malformed BGP bytes.
class BgpDecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// ORIGIN path attribute values.
enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

/// A BGP UPDATE: withdrawals, announcements (NLRI), and path attributes.
/// Only the attributes the scrubber consumes are modeled explicitly;
/// AS_PATH is a flat AS_SEQUENCE.
struct UpdateMessage {
  std::vector<net::Ipv4Prefix> withdrawn;
  std::vector<net::Ipv4Prefix> announced;
  std::vector<std::uint32_t> as_path;       ///< AS_SEQUENCE, origin AS last
  std::vector<Community> communities;
  net::Ipv4Address next_hop{};
  Origin origin = Origin::kIncomplete;

  /// True when any announced route carries the BLACKHOLE community.
  [[nodiscard]] bool is_blackhole_announcement() const noexcept {
    if (announced.empty()) return false;
    for (const Community c : communities) {
      if (c == kBlackhole) return true;
    }
    return false;
  }

  /// Origin (rightmost) AS of the path; 0 when the path is empty.
  [[nodiscard]] std::uint32_t origin_as() const noexcept {
    return as_path.empty() ? 0 : as_path.back();
  }

  /// Encodes the UPDATE as RFC 4271 wire bytes (marker, length, type 2,
  /// withdrawn routes, path attributes, NLRI). Throws std::length_error if
  /// the message would exceed the 4096-byte BGP maximum.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Decodes wire bytes produced by encode() (or any conforming peer).
  /// Throws BgpDecodeError on malformed input.
  [[nodiscard]] static UpdateMessage decode(const std::vector<std::uint8_t>& wire);

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

/// Convenience: builds a blackhole announcement for `prefix` originated by
/// `origin_as`, carrying BLACKHOLE + NO_EXPORT as recommended by RFC 7999.
[[nodiscard]] UpdateMessage make_blackhole_announcement(net::Ipv4Prefix prefix,
                                                        std::uint32_t origin_as,
                                                        net::Ipv4Address next_hop);

/// Convenience: builds a withdrawal of `prefix`.
[[nodiscard]] UpdateMessage make_withdrawal(net::Ipv4Prefix prefix);

}  // namespace scrubber::bgp
