#include "bgp/session.hpp"

#include <algorithm>

namespace scrubber::bgp {
namespace {

constexpr std::size_t kHeaderSize = 19;

/// Writes the 19-byte BGP header in front of a payload.
std::vector<std::uint8_t> with_header(MessageType type,
                                      const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size());
  out.insert(out.end(), 16, 0xFF);
  const auto total = static_cast<std::uint16_t>(kHeaderSize + payload.size());
  out.push_back(static_cast<std::uint8_t>(total >> 8));
  out.push_back(static_cast<std::uint8_t>(total));
  out.push_back(static_cast<std::uint8_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// Validates the header and returns the payload view.
std::vector<std::uint8_t> payload_of(const std::vector<std::uint8_t>& wire) {
  if (wire.size() < kHeaderSize) throw BgpDecodeError("short BGP message");
  for (std::size_t i = 0; i < 16; ++i) {
    if (wire[i] != 0xFF) throw BgpDecodeError("bad BGP marker");
  }
  const std::size_t length = (std::size_t{wire[16]} << 8) | wire[17];
  if (length != wire.size()) throw BgpDecodeError("length field mismatch");
  return {wire.begin() + static_cast<std::ptrdiff_t>(kHeaderSize), wire.end()};
}

}  // namespace

std::vector<std::uint8_t> OpenMessage::encode() const {
  std::vector<std::uint8_t> payload;
  payload.push_back(version);
  payload.push_back(static_cast<std::uint8_t>(as_number >> 8));
  payload.push_back(static_cast<std::uint8_t>(as_number));
  payload.push_back(static_cast<std::uint8_t>(hold_time_s >> 8));
  payload.push_back(static_cast<std::uint8_t>(hold_time_s));
  for (int shift = 24; shift >= 0; shift -= 8)
    payload.push_back(static_cast<std::uint8_t>(bgp_identifier >> shift));
  payload.push_back(0);  // no optional parameters
  return with_header(MessageType::kOpen, payload);
}

OpenMessage OpenMessage::decode(const std::vector<std::uint8_t>& wire) {
  const auto payload = payload_of(wire);
  if (wire[18] != static_cast<std::uint8_t>(MessageType::kOpen))
    throw BgpDecodeError("not an OPEN message");
  if (payload.size() < 10) throw BgpDecodeError("short OPEN payload");
  OpenMessage open;
  open.version = payload[0];
  open.as_number = static_cast<std::uint16_t>((payload[1] << 8) | payload[2]);
  open.hold_time_s = static_cast<std::uint16_t>((payload[3] << 8) | payload[4]);
  open.bgp_identifier = (std::uint32_t{payload[5]} << 24) |
                        (std::uint32_t{payload[6]} << 16) |
                        (std::uint32_t{payload[7]} << 8) | payload[8];
  return open;
}

std::vector<std::uint8_t> NotificationMessage::encode() const {
  return with_header(MessageType::kNotification, {code, subcode});
}

NotificationMessage NotificationMessage::decode(
    const std::vector<std::uint8_t>& wire) {
  const auto payload = payload_of(wire);
  if (wire[18] != static_cast<std::uint8_t>(MessageType::kNotification))
    throw BgpDecodeError("not a NOTIFICATION message");
  if (payload.size() < 2) throw BgpDecodeError("short NOTIFICATION payload");
  return NotificationMessage{payload[0], payload[1]};
}

std::vector<std::uint8_t> encode_keepalive() {
  return with_header(MessageType::kKeepalive, {});
}

MessageType message_type(const std::vector<std::uint8_t>& wire) {
  (void)payload_of(wire);  // header validation
  const std::uint8_t type = wire[18];
  if (type < 1 || type > 4) throw BgpDecodeError("unknown BGP message type");
  return static_cast<MessageType>(type);
}

std::string_view session_state_name(SessionState state) noexcept {
  switch (state) {
    case SessionState::kIdle: return "Idle";
    case SessionState::kOpenSent: return "OpenSent";
    case SessionState::kOpenConfirm: return "OpenConfirm";
    case SessionState::kEstablished: return "Established";
  }
  return "?";
}

Session::Session(Config config, SendHook send, UpdateSink sink)
    : config_(config), send_(std::move(send)), sink_(std::move(sink)) {}

void Session::start(std::uint64_t now_ms) {
  if (state_ != SessionState::kIdle) return;
  OpenMessage open;
  open.as_number = config_.local_as;
  open.hold_time_s = config_.hold_time_s;
  open.bgp_identifier = config_.bgp_identifier;
  send_(open.encode());
  state_ = SessionState::kOpenSent;
  last_received_ms_ = now_ms;
  last_keepalive_sent_ms_ = now_ms;
}

void Session::send_notification(std::uint8_t code, std::uint8_t subcode) {
  NotificationMessage notification{code, subcode};
  last_notification_ = notification;
  send_(notification.encode());
}

void Session::drop_to_idle() {
  state_ = SessionState::kIdle;
  negotiated_hold_s_ = 0;
}

void Session::receive(const std::vector<std::uint8_t>& wire,
                      std::uint64_t now_ms) {
  if (state_ == SessionState::kIdle) return;  // not listening

  MessageType type;
  try {
    type = message_type(wire);
  } catch (const BgpDecodeError&) {
    send_notification(1, 1);  // Message Header Error / Connection Not Synced
    drop_to_idle();
    return;
  }
  last_received_ms_ = now_ms;

  try {
    switch (type) {
      case MessageType::kOpen: {
        if (state_ != SessionState::kOpenSent) {
          send_notification(5, 0);  // FSM error
          drop_to_idle();
          return;
        }
        const OpenMessage peer = OpenMessage::decode(wire);
        if (peer.version != 4) {
          send_notification(2, 1);  // OPEN error / unsupported version
          drop_to_idle();
          return;
        }
        negotiated_hold_s_ = std::min(config_.hold_time_s, peer.hold_time_s);
        send_(encode_keepalive());
        ++keepalives_sent_;
        state_ = SessionState::kOpenConfirm;
        return;
      }
      case MessageType::kKeepalive: {
        if (state_ == SessionState::kOpenConfirm)
          state_ = SessionState::kEstablished;
        return;
      }
      case MessageType::kUpdate: {
        if (state_ != SessionState::kEstablished) {
          send_notification(5, 0);  // FSM error
          drop_to_idle();
          return;
        }
        const UpdateMessage update = UpdateMessage::decode(wire);
        ++updates_received_;
        if (sink_) sink_(update, now_ms);
        return;
      }
      case MessageType::kNotification: {
        drop_to_idle();  // peer closed the session
        return;
      }
    }
  } catch (const BgpDecodeError&) {
    send_notification(3, 1);  // UPDATE message error / malformed attributes
    drop_to_idle();
  }
}

void Session::tick(std::uint64_t now_ms) {
  if (state_ == SessionState::kIdle) return;

  // Hold timer (zero disables it, RFC 4271 §4.2).
  const std::uint64_t hold_ms = std::uint64_t{negotiated_hold_s_} * 1000;
  if (state_ == SessionState::kEstablished && hold_ms > 0 &&
      now_ms - last_received_ms_ > hold_ms) {
    send_notification(4, 0);  // Hold Timer Expired
    drop_to_idle();
    return;
  }

  // Keepalive every hold/3 (or 30 s before negotiation).
  const std::uint64_t interval_ms =
      negotiated_hold_s_ > 0 ? hold_ms / 3 : 30'000;
  if (state_ != SessionState::kIdle && interval_ms > 0 &&
      now_ms - last_keepalive_sent_ms_ >= interval_ms) {
    send_(encode_keepalive());
    ++keepalives_sent_;
    last_keepalive_sent_ms_ = now_ms;
  }
}

}  // namespace scrubber::bgp
