#pragma once
// BGP community attribute values (RFC 1997) including the well-known
// BLACKHOLE community (RFC 7999) that IXP members attach to announcements
// requesting neighbors to drop traffic towards a prefix.

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace scrubber::bgp {

/// A standard 32-bit BGP community, conventionally written "asn:value".
class Community {
 public:
  constexpr Community() noexcept = default;
  constexpr Community(std::uint16_t asn, std::uint16_t value) noexcept
      : raw_((std::uint32_t{asn} << 16) | value) {}
  constexpr explicit Community(std::uint32_t raw) noexcept : raw_(raw) {}

  [[nodiscard]] constexpr std::uint32_t raw() const noexcept { return raw_; }
  [[nodiscard]] constexpr std::uint16_t asn() const noexcept {
    return static_cast<std::uint16_t>(raw_ >> 16);
  }
  [[nodiscard]] constexpr std::uint16_t value() const noexcept {
    return static_cast<std::uint16_t>(raw_ & 0xFFFF);
  }

  /// "asn:value" notation.
  [[nodiscard]] std::string to_string() const {
    return std::to_string(asn()) + ":" + std::to_string(value());
  }

  constexpr auto operator<=>(const Community&) const noexcept = default;

 private:
  std::uint32_t raw_ = 0;
};

/// RFC 7999 BLACKHOLE well-known community (65535:666).
inline constexpr Community kBlackhole{65535, 666};

/// RFC 1997 NO_EXPORT well-known community.
inline constexpr Community kNoExport{0xFFFFFF01};

/// RFC 1997 NO_ADVERTISE well-known community.
inline constexpr Community kNoAdvertise{0xFFFFFF02};

}  // namespace scrubber::bgp

template <>
struct std::hash<scrubber::bgp::Community> {
  std::size_t operator()(const scrubber::bgp::Community& c) const noexcept {
    return std::hash<std::uint32_t>{}(c.raw());
  }
};
