#include "bgp/message.hpp"

#include <algorithm>
#include <array>

namespace scrubber::bgp {
namespace {

// RFC 4271 constants.
constexpr std::size_t kHeaderSize = 19;   // 16 marker + 2 length + 1 type
constexpr std::size_t kMaxMessage = 4096;
constexpr std::uint8_t kTypeUpdate = 2;

// Path attribute type codes.
constexpr std::uint8_t kAttrOrigin = 1;
constexpr std::uint8_t kAttrAsPath = 2;
constexpr std::uint8_t kAttrNextHop = 3;
constexpr std::uint8_t kAttrCommunities = 8;

// Attribute flags.
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagExtendedLength = 0x10;

// AS_PATH segment types.
constexpr std::uint8_t kAsSequence = 2;

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void raw(const std::vector<std::uint8_t>& data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  /// Writes prefix in BGP NLRI form: length byte + ceil(len/8) address bytes.
  void prefix(const net::Ipv4Prefix& p) {
    u8(p.length());
    const std::uint32_t addr = p.address().value();
    const int bytes = (p.length() + 7) / 8;
    for (int i = 0; i < bytes; ++i)
      u8(static_cast<std::uint8_t>(addr >> (24 - 8 * i)));
  }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    require(2);
    const std::uint16_t v = (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1];
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }

  net::Ipv4Prefix prefix() {
    const std::uint8_t length = u8();
    if (length > 32) throw BgpDecodeError("prefix length > 32");
    std::uint32_t addr = 0;
    const int bytes = (length + 7) / 8;
    for (int i = 0; i < bytes; ++i)
      addr |= std::uint32_t{u8()} << (24 - 8 * i);
    return net::Ipv4Prefix(net::Ipv4Address(addr), length);
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ >= size_; }

  Reader sub(std::size_t length) {
    require(length);
    Reader r(data_ + pos_, length);
    pos_ += length;
    return r;
  }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > size_) throw BgpDecodeError("truncated BGP message");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void write_attribute(Writer& out, std::uint8_t flags, std::uint8_t type,
                     const std::vector<std::uint8_t>& body) {
  const bool extended = body.size() > 255;
  out.u8(extended ? static_cast<std::uint8_t>(flags | kFlagExtendedLength) : flags);
  out.u8(type);
  if (extended) {
    out.u16(static_cast<std::uint16_t>(body.size()));
  } else {
    out.u8(static_cast<std::uint8_t>(body.size()));
  }
  out.raw(body);
}

}  // namespace

std::vector<std::uint8_t> UpdateMessage::encode() const {
  // Withdrawn routes section.
  Writer withdrawn_writer;
  for (const auto& p : withdrawn) withdrawn_writer.prefix(p);
  const std::vector<std::uint8_t> withdrawn_bytes = withdrawn_writer.take();

  // Path attributes section (only present when announcing routes).
  Writer attrs_writer;
  if (!announced.empty()) {
    {
      Writer body;
      body.u8(static_cast<std::uint8_t>(origin));
      write_attribute(attrs_writer, kFlagTransitive, kAttrOrigin, body.take());
    }
    {
      Writer body;
      if (!as_path.empty()) {
        body.u8(kAsSequence);
        body.u8(static_cast<std::uint8_t>(as_path.size()));
        for (const std::uint32_t asn : as_path) body.u32(asn);
      }
      write_attribute(attrs_writer, kFlagTransitive, kAttrAsPath, body.take());
    }
    {
      Writer body;
      body.u32(next_hop.value());
      write_attribute(attrs_writer, kFlagTransitive, kAttrNextHop, body.take());
    }
    if (!communities.empty()) {
      Writer body;
      for (const Community c : communities) body.u32(c.raw());
      write_attribute(attrs_writer, kFlagOptional | kFlagTransitive,
                      kAttrCommunities, body.take());
    }
  }
  const std::vector<std::uint8_t> attr_bytes = attrs_writer.take();

  Writer nlri_writer;
  for (const auto& p : announced) nlri_writer.prefix(p);
  const std::vector<std::uint8_t> nlri_bytes = nlri_writer.take();

  const std::size_t total = kHeaderSize + 2 + withdrawn_bytes.size() + 2 +
                            attr_bytes.size() + nlri_bytes.size();
  if (total > kMaxMessage)
    throw std::length_error("BGP UPDATE exceeds 4096 bytes");

  Writer out;
  for (int i = 0; i < 16; ++i) out.u8(0xFF);  // marker (all ones, RFC 4271)
  out.u16(static_cast<std::uint16_t>(total));
  out.u8(kTypeUpdate);
  out.u16(static_cast<std::uint16_t>(withdrawn_bytes.size()));
  out.raw(withdrawn_bytes);
  out.u16(static_cast<std::uint16_t>(attr_bytes.size()));
  out.raw(attr_bytes);
  out.raw(nlri_bytes);
  return out.take();
}

UpdateMessage UpdateMessage::decode(const std::vector<std::uint8_t>& wire) {
  Reader in(wire.data(), wire.size());
  for (int i = 0; i < 16; ++i) {
    if (in.u8() != 0xFF) throw BgpDecodeError("bad BGP marker");
  }
  const std::uint16_t length = in.u16();
  if (length != wire.size()) throw BgpDecodeError("length field mismatch");
  if (in.u8() != kTypeUpdate) throw BgpDecodeError("not an UPDATE message");

  UpdateMessage msg;
  {
    const std::uint16_t withdrawn_len = in.u16();
    Reader wr = in.sub(withdrawn_len);
    while (!wr.done()) msg.withdrawn.push_back(wr.prefix());
  }
  {
    const std::uint16_t attrs_len = in.u16();
    Reader ar = in.sub(attrs_len);
    while (!ar.done()) {
      const std::uint8_t flags = ar.u8();
      const std::uint8_t type = ar.u8();
      const std::size_t body_len =
          (flags & kFlagExtendedLength) ? ar.u16() : ar.u8();
      Reader body = ar.sub(body_len);
      switch (type) {
        case kAttrOrigin:
          msg.origin = static_cast<Origin>(body.u8());
          break;
        case kAttrAsPath:
          while (!body.done()) {
            const std::uint8_t seg_type = body.u8();
            const std::uint8_t seg_len = body.u8();
            if (seg_type != kAsSequence)
              throw BgpDecodeError("unsupported AS_PATH segment type");
            for (int i = 0; i < seg_len; ++i) msg.as_path.push_back(body.u32());
          }
          break;
        case kAttrNextHop:
          msg.next_hop = net::Ipv4Address(body.u32());
          break;
        case kAttrCommunities:
          while (!body.done()) msg.communities.emplace_back(body.u32());
          break;
        default:
          break;  // skip unknown attributes (body already consumed)
      }
    }
  }
  while (!in.done()) msg.announced.push_back(in.prefix());
  return msg;
}

UpdateMessage make_blackhole_announcement(net::Ipv4Prefix prefix,
                                          std::uint32_t origin_as,
                                          net::Ipv4Address next_hop) {
  UpdateMessage msg;
  msg.announced.push_back(prefix);
  msg.as_path = {origin_as};
  msg.next_hop = next_hop;
  msg.origin = Origin::kIgp;
  msg.communities = {kBlackhole, kNoExport};
  return msg;
}

UpdateMessage make_withdrawal(net::Ipv4Prefix prefix) {
  UpdateMessage msg;
  msg.withdrawn.push_back(prefix);
  return msg;
}

}  // namespace scrubber::bgp
