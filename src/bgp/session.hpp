#pragma once
// Minimal BGP-4 speaker: OPEN / KEEPALIVE / NOTIFICATION message codecs
// and the session finite state machine (RFC 4271 §8, collector subset).
//
// The scrubber's BGP feed comes from a route-server peering. This module
// models the receiving side: a passive session that negotiates hold time,
// keeps the peering alive, hands every received UPDATE to a sink (the
// BlackholeRegistry / Rib), and tears down on protocol errors or hold
// timer expiry. Time is injected (millisecond ticks) so tests and the
// simulator drive it deterministically.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "bgp/message.hpp"

namespace scrubber::bgp {

/// BGP message types (RFC 4271).
enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
};

/// OPEN message payload.
struct OpenMessage {
  std::uint8_t version = 4;
  std::uint16_t as_number = 0;
  std::uint16_t hold_time_s = 90;
  std::uint32_t bgp_identifier = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static OpenMessage decode(const std::vector<std::uint8_t>& wire);

  friend bool operator==(const OpenMessage&, const OpenMessage&) = default;
};

/// NOTIFICATION message payload.
struct NotificationMessage {
  std::uint8_t code = 0;
  std::uint8_t subcode = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static NotificationMessage decode(
      const std::vector<std::uint8_t>& wire);

  friend bool operator==(const NotificationMessage&,
                         const NotificationMessage&) = default;
};

/// Encodes a KEEPALIVE (header only).
[[nodiscard]] std::vector<std::uint8_t> encode_keepalive();

/// Peeks the type of a wire message; throws BgpDecodeError when malformed.
[[nodiscard]] MessageType message_type(const std::vector<std::uint8_t>& wire);

/// Session FSM states (collector subset of RFC 4271 §8.2.2).
enum class SessionState : std::uint8_t {
  kIdle,
  kOpenSent,
  kOpenConfirm,
  kEstablished,
};

[[nodiscard]] std::string_view session_state_name(SessionState state) noexcept;

/// One side of a BGP peering, collector role.
class Session {
 public:
  struct Config {
    std::uint16_t local_as = 64512;
    std::uint32_t bgp_identifier = 0x0A0A0A0A;
    std::uint16_t hold_time_s = 90;
  };

  using SendHook = std::function<void(std::vector<std::uint8_t>)>;
  using UpdateSink = std::function<void(const UpdateMessage&, std::uint64_t now_ms)>;

  Session(Config config, SendHook send, UpdateSink sink);

  /// Starts the session at `now_ms`: transitions Idle -> OpenSent and
  /// emits the local OPEN.
  void start(std::uint64_t now_ms);

  /// Feeds one received wire message. Malformed or out-of-sequence input
  /// sends a NOTIFICATION and drops to Idle.
  void receive(const std::vector<std::uint8_t>& wire, std::uint64_t now_ms);

  /// Advances time: emits KEEPALIVEs (every hold/3) and enforces the hold
  /// timer. Call regularly (at least once per second of simulated time).
  void tick(std::uint64_t now_ms);

  [[nodiscard]] SessionState state() const noexcept { return state_; }
  [[nodiscard]] bool established() const noexcept {
    return state_ == SessionState::kEstablished;
  }

  /// Hold time negotiated with the peer (min of both OPENs), seconds.
  [[nodiscard]] std::uint16_t negotiated_hold_time() const noexcept {
    return negotiated_hold_s_;
  }

  /// Statistics.
  [[nodiscard]] std::uint64_t updates_received() const noexcept {
    return updates_received_;
  }
  [[nodiscard]] std::uint64_t keepalives_sent() const noexcept {
    return keepalives_sent_;
  }
  [[nodiscard]] std::optional<NotificationMessage> last_notification_sent()
      const noexcept {
    return last_notification_;
  }

 private:
  void send_notification(std::uint8_t code, std::uint8_t subcode);
  void drop_to_idle();

  Config config_;
  SendHook send_;
  UpdateSink sink_;
  SessionState state_ = SessionState::kIdle;
  std::uint16_t negotiated_hold_s_ = 0;
  std::uint64_t last_received_ms_ = 0;
  std::uint64_t last_keepalive_sent_ms_ = 0;
  std::uint64_t updates_received_ = 0;
  std::uint64_t keepalives_sent_ = 0;
  std::optional<NotificationMessage> last_notification_;
};

}  // namespace scrubber::bgp
