#include "ml/linear.hpp"

#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace scrubber::ml {

void LinearSvm::fit(const Dataset& data) {
  const std::size_t n = data.n_rows();
  const std::size_t d = data.n_cols();
  weights_.assign(d, 0.0);
  bias_ = 0.0;
  if (n == 0) return;

  // Optional class weighting (Table 4: class weight in {none, balanced}).
  const double pos = static_cast<double>(data.positive_count());
  const double neg = static_cast<double>(n) - pos;
  double w_pos = 1.0, w_neg = 1.0;
  if (params_.balanced_class_weight && pos > 0.0 && neg > 0.0) {
    w_pos = static_cast<double>(n) / (2.0 * pos);
    w_neg = static_cast<double>(n) / (2.0 * neg);
  }

  util::Rng rng(params_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  // Averaged SGD: the returned model is the running average of iterates,
  // which stabilizes the hinge objective considerably.
  std::vector<double> avg_w(d, 0.0);
  double avg_b = 0.0;
  std::size_t averaged = 0;
  std::size_t t = 0;

  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.shuffle(order);
    for (const std::size_t i : order) {
      ++t;
      const double eta =
          params_.learning_rate / std::sqrt(static_cast<double>(t));
      const auto row = data.row(i);
      const double y = data.label(i) == 1 ? 1.0 : -1.0;
      const double cls_weight = y > 0 ? w_pos : w_neg;

      double m = bias_;
      for (std::size_t j = 0; j < d; ++j) {
        const double v = is_missing(row[j]) ? 0.0 : row[j];
        m += weights_[j] * v;
      }
      const double slack = 1.0 - y * m;

      // Regularizer gradient: w (applied with per-sample scaling 1/n).
      const double reg_scale = 1.0 / static_cast<double>(n);
      if (slack > 0.0) {
        const double loss_grad = -2.0 * params_.c * cls_weight * slack * y;
        for (std::size_t j = 0; j < d; ++j) {
          const double v = is_missing(row[j]) ? 0.0 : row[j];
          weights_[j] -= eta * (weights_[j] * reg_scale + loss_grad * v);
        }
        bias_ -= eta * loss_grad;
      } else {
        for (std::size_t j = 0; j < d; ++j)
          weights_[j] -= eta * weights_[j] * reg_scale;
      }
      // Tail averaging over the second half of training.
      if (epoch * 2 >= params_.epochs) {
        ++averaged;
        const double k = 1.0 / static_cast<double>(averaged);
        for (std::size_t j = 0; j < d; ++j)
          avg_w[j] += (weights_[j] - avg_w[j]) * k;
        avg_b += (bias_ - avg_b) * k;
      }
    }
  }
  if (averaged > 0) {
    weights_ = std::move(avg_w);
    bias_ = avg_b;
  }
}

double LinearSvm::margin(std::span<const double> row) const {
  double m = bias_;
  for (std::size_t j = 0; j < row.size() && j < weights_.size(); ++j) {
    const double v = is_missing(row[j]) ? 0.0 : row[j];
    m += weights_[j] * v;
  }
  return m;
}

double LinearSvm::score(std::span<const double> row) const {
  return 1.0 / (1.0 + std::exp(-margin(row)));
}

}  // namespace scrubber::ml
