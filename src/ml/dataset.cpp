#include "ml/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace scrubber::ml {

std::size_t Dataset::column_index(std::string_view name) const {
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    if (columns_[j].name == name) return j;
  }
  throw std::out_of_range("no such column: " + std::string(name));
}

void Dataset::add_row(std::span<const double> values, int label) {
  if (values.size() != n_cols())
    throw std::invalid_argument("row width does not match schema");
  data_.insert(data_.end(), values.begin(), values.end());
  labels_.push_back(label);
}

std::size_t Dataset::positive_count() const noexcept {
  std::size_t count = 0;
  for (const int y : labels_) count += static_cast<std::size_t>(y == 1);
  return count;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(columns_);
  out.data_.reserve(indices.size() * n_cols());
  out.labels_.reserve(indices.size());
  for (const std::size_t i : indices) {
    const auto r = row(i);
    out.data_.insert(out.data_.end(), r.begin(), r.end());
    out.labels_.push_back(labels_[i]);
  }
  return out;
}

Dataset Dataset::select_columns(
    std::span<const std::size_t> column_indices) const {
  std::vector<ColumnInfo> cols;
  cols.reserve(column_indices.size());
  for (const std::size_t j : column_indices) cols.push_back(columns_.at(j));
  Dataset out(std::move(cols));
  out.data_.reserve(n_rows() * column_indices.size());
  out.labels_ = labels_;
  for (std::size_t i = 0; i < n_rows(); ++i) {
    for (const std::size_t j : column_indices) out.data_.push_back(at(i, j));
  }
  return out;
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
Dataset::split_indices(double train_fraction, util::Rng& rng) const {
  std::vector<std::size_t> order(n_rows());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(n_rows()) * train_fraction);
  const auto cut_it = order.begin() + static_cast<std::ptrdiff_t>(cut);
  std::vector<std::size_t> train(order.begin(), cut_it);
  std::vector<std::size_t> test(cut_it, order.end());
  return {std::move(train), std::move(test)};
}

std::vector<std::vector<std::size_t>> Dataset::stratified_folds(
    std::size_t k, util::Rng& rng) const {
  if (k == 0) throw std::invalid_argument("k must be positive");
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < n_rows(); ++i) {
    (labels_[i] == 1 ? pos : neg).push_back(i);
  }
  rng.shuffle(pos);
  rng.shuffle(neg);
  std::vector<std::vector<std::size_t>> folds(k);
  for (std::size_t i = 0; i < pos.size(); ++i) folds[i % k].push_back(pos[i]);
  for (std::size_t i = 0; i < neg.size(); ++i) folds[i % k].push_back(neg[i]);
  return folds;
}

void Dataset::append(const Dataset& other) {
  if (other.columns_ != columns_)
    throw std::invalid_argument("cannot append dataset with different schema");
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
}

std::span<const double> Dataset::raw_padded(
    std::size_t lane, std::vector<double>& storage) const {
  const std::size_t rows = n_rows();
  if (lane <= 1 || n_cols() == 0 || rows % lane == 0) {
    return {data_.data(), data_.size()};
  }
  const std::size_t padded = (rows + lane - 1) / lane * lane;
  storage.assign(padded * n_cols(), 0.0);
  std::copy(data_.begin(), data_.end(), storage.begin());
  return {storage.data(), storage.size()};
}

void Dataset::set_labels(std::vector<int> labels) {
  if (labels.size() != labels_.size())
    throw std::invalid_argument("label count mismatch");
  labels_ = std::move(labels);
}

}  // namespace scrubber::ml
