#pragma once
// Dummy classifier (DUM in Tables 3/5): guesses a label uniformly at
// random — the paper's worst-conceivable baseline.

#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace scrubber::ml {

/// Uniform random coin-toss classifier.
class DummyClassifier final : public Classifier {
 public:
  explicit DummyClassifier(std::uint64_t seed = 99) noexcept : rng_(seed) {}

  void fit(const Dataset&) override {}

  [[nodiscard]] double score(std::span<const double>) const override {
    // The coin toss is state-mutating; rng_ is mutable by design so the
    // classifier still presents the const scoring interface.
    return rng_.uniform();
  }

  [[nodiscard]] std::string name() const override { return "DUM"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<DummyClassifier>(*this);
  }

 private:
  mutable util::Rng rng_;
};

}  // namespace scrubber::ml
