#include "ml/bin_cache.hpp"

#include <bit>

namespace scrubber::ml {
namespace {

/// splitmix64 finalizer: the avalanche stage used across the tree
/// (util/flat_hash.hpp); chained over words it makes a solid streaming
/// content hash with no seed material — fully deterministic across runs.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

// scrubber-deterministic-begin

BinCache& BinCache::instance() {
  static BinCache cache;
  return cache;
}

BinCache::Key BinCache::make_key(const Dataset& data, std::size_t max_bins,
                                 MissingPolicy policy) noexcept {
  // Two independently-seeded mix64 chains over the cell words give a
  // 128-bit content hash; cells are hashed by bit pattern, so the quiet
  // NaN missing sentinel hashes stably.
  std::uint64_t lo = 0x49585053435255ULL;  // "IXPSCRU"
  std::uint64_t hi = 0x42494E43414348ULL;  // "BINCACH"
  for (const double cell : data.raw()) {
    const std::uint64_t word = std::bit_cast<std::uint64_t>(cell);
    lo = mix64(lo ^ word);
    hi = mix64(hi + word);
  }
  Key key;
  key.hash_lo = lo;
  key.hash_hi = hi;
  key.rows = data.n_rows();
  key.cols = data.n_cols();
  key.max_bins = max_bins;
  key.policy = policy;
  return key;
}

std::shared_ptr<const BinnedMatrix> BinCache::get_or_build(
    const Dataset& data, std::size_t max_bins, MissingPolicy policy) {
  const Key key = make_key(data, max_bins, policy);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry& entry : entries_) {
      if (entry.key == key) {
        ++hits_;
        return entry.matrix;
      }
    }
    ++misses_;
  }

  // Build outside the lock: independent datasets bin concurrently, and a
  // benign shared-miss race just builds the same value twice.
  auto built = std::make_shared<const BinnedMatrix>(data, max_bins, policy);

  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) {
    if (entry.key == key) return entry.matrix;  // racer inserted first
  }
  if (entries_.size() >= kCapacity) {
    entries_.erase(entries_.begin());  // FIFO: oldest insertion out
    ++evictions_;
  }
  entries_.push_back(Entry{key, built});
  return built;
}

BinCache::Stats BinCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.entries = entries_.size();
  return out;
}

void BinCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

// scrubber-deterministic-end

}  // namespace scrubber::ml
