#pragma once
// Preprocessing stages of the Figure 8 pipelines:
//   FR  — feature reduction (drop constant / listed columns up front)
//   I   — imputer, replaces missing values with a constant (-1)
//   S   — standardize to zero mean / unit variance
//   N   — min-max normalize to [0, 1]
// (WoE and PCA live in woe.hpp / pca.hpp.)

#include <vector>

#include "ml/classifier.hpp"

namespace scrubber::ml {

/// Replaces missing values (NaN) with a fixed fill value (paper: -1).
class Imputer final : public Transformer {
 public:
  explicit Imputer(double fill_value = -1.0) noexcept : fill_(fill_value) {}

  void fit(const Dataset&) override {}
  void apply(std::span<double> row) const override {
    for (double& v : row) {
      if (is_missing(v)) v = fill_;
    }
  }
  [[nodiscard]] std::string name() const override { return "I"; }
  [[nodiscard]] std::unique_ptr<Transformer> clone() const override {
    return std::make_unique<Imputer>(*this);
  }

  [[nodiscard]] double fill_value() const noexcept { return fill_; }

 private:
  double fill_;
};

/// Standardizes every column to zero mean and unit variance.
class Standardizer final : public Transformer {
 public:
  void fit(const Dataset& data) override;
  void apply(std::span<double> row) const override;
  [[nodiscard]] std::string name() const override { return "S"; }
  [[nodiscard]] std::unique_ptr<Transformer> clone() const override {
    return std::make_unique<Standardizer>(*this);
  }

  [[nodiscard]] const std::vector<double>& means() const noexcept { return mean_; }
  [[nodiscard]] const std::vector<double>& stddevs() const noexcept { return std_; }

  /// Rebuilds a fitted standardizer (model_io).
  void restore(std::vector<double> means, std::vector<double> stddevs) {
    mean_ = std::move(means);
    std_ = std::move(stddevs);
  }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

/// Min-max normalization of every column to [0, 1]; constant columns map to 0.
class MinMaxNormalizer final : public Transformer {
 public:
  void fit(const Dataset& data) override;
  void apply(std::span<double> row) const override;
  [[nodiscard]] std::string name() const override { return "N"; }
  [[nodiscard]] std::unique_ptr<Transformer> clone() const override {
    return std::make_unique<MinMaxNormalizer>(*this);
  }

  [[nodiscard]] const std::vector<double>& mins() const noexcept { return min_; }
  [[nodiscard]] const std::vector<double>& ranges() const noexcept { return range_; }

  /// Rebuilds a fitted normalizer (model_io).
  void restore(std::vector<double> mins, std::vector<double> ranges) {
    min_ = std::move(mins);
    range_ = std::move(ranges);
  }

 private:
  std::vector<double> min_;
  std::vector<double> range_;
};

/// Feature reduction: zeroes out columns identified as uninformative
/// (constant across the training set) so downstream models ignore them.
/// Keeping the width constant keeps pipelines simple; models that are
/// sensitive to dead columns (LSVM/NN) run PCA afterwards anyway.
class FeatureReducer final : public Transformer {
 public:
  void fit(const Dataset& data) override;
  void apply(std::span<double> row) const override;
  [[nodiscard]] std::string name() const override { return "FR"; }
  [[nodiscard]] std::unique_ptr<Transformer> clone() const override {
    return std::make_unique<FeatureReducer>(*this);
  }

  /// Indices of columns found constant during fit().
  [[nodiscard]] const std::vector<std::size_t>& dropped() const noexcept {
    return dropped_;
  }

  /// Rebuilds a fitted reducer (model_io).
  void restore(std::vector<std::size_t> dropped) { dropped_ = std::move(dropped); }

 private:
  std::vector<std::size_t> dropped_;
};

}  // namespace scrubber::ml
