#include "ml/neural_net.hpp"

#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace scrubber::ml {
namespace {

[[nodiscard]] double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

/// Adam state for one parameter vector.
struct Adam {
  std::vector<double> m, v;
  double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  std::size_t t = 0;

  explicit Adam(std::size_t n) : m(n, 0.0), v(n, 0.0) {}

  void step(std::vector<double>& params, const std::vector<double>& grad,
            double lr) {
    ++t;
    const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(t));
    const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(t));
    for (std::size_t i = 0; i < params.size(); ++i) {
      m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
      v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
      params[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
    }
  }
};

}  // namespace

void NeuralNet::fit(const Dataset& data) {
  const std::size_t d = data.n_cols();
  const std::size_t n = data.n_rows();
  const std::size_t h = params_.hidden_units;
  input_width_ = d;

  util::Rng rng(params_.seed);
  // He initialization for the ReLU layer.
  const double scale1 = std::sqrt(2.0 / static_cast<double>(d > 0 ? d : 1));
  const double scale2 = std::sqrt(2.0 / static_cast<double>(h > 0 ? h : 1));
  w1_.assign(h * d, 0.0);
  for (double& w : w1_) w = rng.normal(0.0, scale1);
  b1_.assign(h, 0.0);
  w2_.assign(h, 0.0);
  for (double& w : w2_) w = rng.normal(0.0, scale2);
  b2_ = 0.0;
  if (n == 0) return;

  Adam adam_w1(w1_.size()), adam_b1(b1_.size()), adam_w2(w2_.size()), adam_b2(1);
  std::vector<double> g_w1(w1_.size()), g_b1(h), g_w2(h);
  std::vector<double> b2_vec{0.0}, g_b2(1);
  std::vector<double> hidden(h), act(h);
  std::vector<bool> keep(h, true);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < n; start += params_.batch_size) {
      const std::size_t end = std::min(n, start + params_.batch_size);
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      std::fill(g_w1.begin(), g_w1.end(), 0.0);
      std::fill(g_b1.begin(), g_b1.end(), 0.0);
      std::fill(g_w2.begin(), g_w2.end(), 0.0);
      g_b2[0] = 0.0;

      for (std::size_t k = start; k < end; ++k) {
        const std::size_t i = order[k];
        const auto row = data.row(i);
        const double y = data.label(i) == 1 ? 1.0 : 0.0;

        // Inverted dropout mask on the hidden layer.
        double keep_scale = 1.0;
        if (params_.dropout > 0.0) {
          for (std::size_t u = 0; u < h; ++u)
            keep[u] = !rng.chance(params_.dropout);
          keep_scale = 1.0 / (1.0 - params_.dropout);
        }

        // Forward.
        for (std::size_t u = 0; u < h; ++u) {
          double z = b1_[u];
          const double* wrow = w1_.data() + u * d;
          for (std::size_t j = 0; j < d; ++j) {
            const double v = is_missing(row[j]) ? 0.0 : row[j];
            z += wrow[j] * v;
          }
          hidden[u] = z;
          double a = z > 0.0 ? z : 0.0;
          if (params_.dropout > 0.0) a = keep[u] ? a * keep_scale : 0.0;
          act[u] = a;
        }
        double out = b2_vec[0];
        for (std::size_t u = 0; u < h; ++u) out += w2_[u] * act[u];
        const double p = sigmoid(out);

        // Backward (cross-entropy + sigmoid => delta = p - y).
        const double delta = (p - y) * inv_batch;
        g_b2[0] += delta;
        for (std::size_t u = 0; u < h; ++u) {
          g_w2[u] += delta * act[u];
          double dh = delta * w2_[u];
          if (params_.dropout > 0.0) dh = keep[u] ? dh * keep_scale : 0.0;
          if (hidden[u] <= 0.0) dh = 0.0;  // ReLU gate
          if (dh == 0.0) continue;
          g_b1[u] += dh;
          double* gw = g_w1.data() + u * d;
          for (std::size_t j = 0; j < d; ++j) {
            const double v = is_missing(row[j]) ? 0.0 : row[j];
            gw[j] += dh * v;
          }
        }
      }

      adam_w1.step(w1_, g_w1, params_.learning_rate);
      adam_b1.step(b1_, g_b1, params_.learning_rate);
      adam_w2.step(w2_, g_w2, params_.learning_rate);
      adam_b2.step(b2_vec, g_b2, params_.learning_rate);
    }
  }
  b2_ = b2_vec[0];
}

double NeuralNet::score(std::span<const double> row) const {
  const std::size_t h = w2_.size();
  const std::size_t d = input_width_;
  double out = b2_;
  for (std::size_t u = 0; u < h; ++u) {
    double z = b1_[u];
    const double* wrow = w1_.data() + u * d;
    for (std::size_t j = 0; j < d && j < row.size(); ++j) {
      const double v = is_missing(row[j]) ? 0.0 : row[j];
      z += wrow[j] * v;
    }
    if (z > 0.0) out += w2_[u] * z;
  }
  return sigmoid(out);
}

}  // namespace scrubber::ml
