#pragma once
// Naive Bayes classifiers: Gaussian, multinomial, complement, and
// Bernoulli variants — NB-G / NB-M / NB-C / NB-B of Tables 3-5.

#include <vector>

#include "ml/classifier.hpp"

namespace scrubber::ml {

/// Gaussian naive Bayes with variance smoothing (Table 4: var. smoothing).
class GaussianNaiveBayes final : public Classifier {
 public:
  explicit GaussianNaiveBayes(double var_smoothing = 1e-9) noexcept
      : var_smoothing_(var_smoothing) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] double score(std::span<const double> row) const override;
  [[nodiscard]] std::string name() const override { return "NB-G"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<GaussianNaiveBayes>(*this);
  }

  /// Trained parameters (model_io).
  struct Params {
    double log_prior[2] = {0.0, 0.0};
    std::vector<double> mean[2];
    std::vector<double> var[2];
  };
  [[nodiscard]] Params trained_params() const {
    Params p;
    for (int c = 0; c < 2; ++c) {
      p.log_prior[c] = log_prior_[c];
      p.mean[c] = mean_[c];
      p.var[c] = var_[c];
    }
    return p;
  }

  /// Rebuilds a trained model (model_io).
  void restore(Params params) {
    for (int c = 0; c < 2; ++c) {
      log_prior_[c] = params.log_prior[c];
      mean_[c] = std::move(params.mean[c]);
      var_[c] = std::move(params.var[c]);
    }
  }

 private:
  double var_smoothing_;
  double log_prior_[2] = {0.0, 0.0};
  std::vector<double> mean_[2];
  std::vector<double> var_[2];
};

/// Flavor of count-based naive Bayes.
enum class CountNbKind { kMultinomial, kComplement, kBernoulli };

/// Multinomial / complement / Bernoulli naive Bayes with additive
/// (Lidstone) smoothing. Expects non-negative features (the Figure 8
/// pipeline normalizes to [0, 1] first); Bernoulli binarizes at > 0.
class CountingNaiveBayes final : public Classifier {
 public:
  explicit CountingNaiveBayes(CountNbKind kind, double alpha = 1.0) noexcept
      : kind_(kind), alpha_(alpha) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] double score(std::span<const double> row) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<CountingNaiveBayes>(*this);
  }

 private:
  CountNbKind kind_;
  double alpha_;
  double log_prior_[2] = {0.0, 0.0};
  std::vector<double> log_prob_[2];   // per-feature log likelihood weights
  std::vector<double> log_neg_[2];    // Bernoulli: log(1 - p)
};

}  // namespace scrubber::ml
