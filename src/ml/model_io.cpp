#include "ml/model_io.hpp"

#include <stdexcept>

#include "ml/dummy.hpp"
#include "ml/pca.hpp"
#include "ml/preprocess.hpp"

namespace scrubber::ml {
namespace {

util::Json doubles_to_json(const std::vector<double>& values) {
  util::JsonArray out;
  out.reserve(values.size());
  for (const double v : values) out.emplace_back(v);
  return util::Json(std::move(out));
}

std::vector<double> doubles_from_json(const util::Json& json) {
  std::vector<double> out;
  for (const auto& v : json.as_array()) out.push_back(v.as_number());
  return out;
}

util::Json tree_to_json(const GradientBoostedTrees::Tree& tree) {
  util::JsonArray nodes;
  nodes.reserve(tree.size());
  for (const auto& node : tree) {
    util::JsonObject obj;
    obj.emplace_back("l", util::Json(static_cast<std::int64_t>(node.left)));
    obj.emplace_back("r", util::Json(static_cast<std::int64_t>(node.right)));
    obj.emplace_back("f", util::Json(static_cast<std::int64_t>(node.feature)));
    obj.emplace_back("t", util::Json(node.threshold));
    obj.emplace_back("v", util::Json(node.value));
    nodes.emplace_back(std::move(obj));
  }
  return util::Json(std::move(nodes));
}

GradientBoostedTrees::Tree tree_from_json(const util::Json& json) {
  GradientBoostedTrees::Tree tree;
  for (const auto& entry : json.as_array()) {
    GradientBoostedTrees::Node node;
    node.left = static_cast<std::int32_t>(entry.at("l").as_int());
    node.right = static_cast<std::int32_t>(entry.at("r").as_int());
    node.feature = static_cast<std::uint32_t>(entry.at("f").as_int());
    node.threshold = entry.at("t").as_number();
    node.value = entry.at("v").as_number();
    tree.push_back(node);
  }
  return tree;
}

}  // namespace

// GCC 12 reports spurious -Wmaybe-uninitialized for the variant storage of
// temporary Json values once vector::emplace_back is inlined at -O2; the
// temporaries are fully constructed before the move (PR 105593 family).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

util::Json gbt_to_json(const GradientBoostedTrees& model) {
  util::Json out;
  out.set("type", util::Json("gbt"));
  out.set("base_margin", util::Json(model.base_margin()));
  {
    const auto& p = model.params();
    util::Json params;
    params.set("n_estimators", util::Json(static_cast<std::uint64_t>(p.n_estimators)));
    params.set("max_depth", util::Json(static_cast<std::uint64_t>(p.max_depth)));
    params.set("learning_rate", util::Json(p.learning_rate));
    params.set("reg_lambda", util::Json(p.reg_lambda));
    params.set("gamma", util::Json(p.gamma));
    params.set("min_child_weight", util::Json(p.min_child_weight));
    params.set("max_bins", util::Json(static_cast<std::uint64_t>(p.max_bins)));
    params.set("missing_reserved_bin", util::Json(p.missing_reserved_bin));
    out.set("params", std::move(params));
  }
  {
    util::JsonArray trees;
    trees.reserve(model.trees().size());
    for (const auto& tree : model.trees()) trees.push_back(tree_to_json(tree));
    out.set("trees", util::Json(std::move(trees)));
  }
  {
    util::JsonArray gains;
    for (const auto& g : model.gain_importance()) {
      util::JsonObject obj;
      obj.emplace_back("feature", util::Json(static_cast<std::uint64_t>(g.feature)));
      obj.emplace_back("total_gain", util::Json(g.total_gain));
      obj.emplace_back("splits", util::Json(static_cast<std::uint64_t>(g.split_count)));
      gains.emplace_back(std::move(obj));
    }
    out.set("importance", util::Json(std::move(gains)));
  }
  return out;
}

std::unique_ptr<GradientBoostedTrees> gbt_from_json(const util::Json& json) {
  if (json.at("type").as_string() != "gbt")
    throw util::JsonError("not a gbt model");
  GbtParams params;
  const auto& p = json.at("params");
  params.n_estimators = static_cast<std::size_t>(p.at("n_estimators").as_int());
  params.max_depth = static_cast<std::size_t>(p.at("max_depth").as_int());
  params.learning_rate = p.at("learning_rate").as_number();
  params.reg_lambda = p.at("reg_lambda").as_number();
  params.gamma = p.at("gamma").as_number();
  params.min_child_weight = p.at("min_child_weight").as_number();
  params.max_bins = static_cast<std::size_t>(p.at("max_bins").as_int());
  // Absent in models saved before the reserved-bin option existed; those
  // trained with the legacy -1.0 missing mapping.
  if (const auto* flag = p.find("missing_reserved_bin")) {
    params.missing_reserved_bin = flag->as_bool();
  }

  std::vector<GradientBoostedTrees::Tree> trees;
  for (const auto& tree : json.at("trees").as_array())
    trees.push_back(tree_from_json(tree));

  std::vector<FeatureGain> importance;
  if (const auto* gains = json.find("importance")) {
    for (const auto& entry : gains->as_array()) {
      FeatureGain g;
      g.feature = static_cast<std::size_t>(entry.at("feature").as_int());
      g.total_gain = entry.at("total_gain").as_number();
      g.split_count = static_cast<std::size_t>(entry.at("splits").as_int());
      importance.push_back(g);
    }
  }

  auto model = std::make_unique<GradientBoostedTrees>(params);
  model->restore(std::move(trees), json.at("base_margin").as_number(), params,
                 std::move(importance));
  return model;
}

util::Json lsvm_to_json(const LinearSvm& model) {
  util::Json out;
  out.set("type", util::Json("lsvm"));
  out.set("bias", util::Json(model.bias()));
  util::JsonArray weights;
  weights.reserve(model.weights().size());
  for (const double w : model.weights()) weights.emplace_back(w);
  out.set("weights", util::Json(std::move(weights)));
  return out;
}

std::unique_ptr<LinearSvm> lsvm_from_json(const util::Json& json) {
  if (json.at("type").as_string() != "lsvm")
    throw util::JsonError("not an lsvm model");
  std::vector<double> weights;
  for (const auto& w : json.at("weights").as_array())
    weights.push_back(w.as_number());
  auto model = std::make_unique<LinearSvm>();
  model->restore(std::move(weights), json.at("bias").as_number());
  return model;
}

util::Json woe_to_json(const WoeEncoder& encoder, std::size_t total_columns) {
  util::Json out;
  out.set("type", util::Json("woe"));
  out.set("columns", util::Json(static_cast<std::uint64_t>(total_columns)));
  util::JsonArray tables;
  for (const std::size_t j : encoder.encoded_columns()) {
    util::JsonObject entry;
    entry.emplace_back("index", util::Json(static_cast<std::uint64_t>(j)));
    util::JsonArray pairs;
    // FlatHash iterates in insertion order, so a fitted column serializes
    // deterministically and a loaded one re-serializes byte-identically.
    encoder.column(j).table().for_each([&pairs](std::int64_t value,
                                                double woe) {
      util::JsonArray pair;
      pair.emplace_back(static_cast<double>(value));
      pair.emplace_back(woe);
      pairs.emplace_back(std::move(pair));
    });
    entry.emplace_back("table", util::Json(std::move(pairs)));
    tables.emplace_back(std::move(entry));
  }
  out.set("tables", util::Json(std::move(tables)));
  return out;
}

std::unique_ptr<WoeEncoder> woe_from_json(const util::Json& json) {
  if (json.at("type").as_string() != "woe")
    throw util::JsonError("not a woe encoder");
  const auto total = static_cast<std::size_t>(json.at("columns").as_int());
  std::vector<std::optional<WoeColumn>> columns(total);
  for (const auto& entry : json.at("tables").as_array()) {
    const auto index = static_cast<std::size_t>(entry.at("index").as_int());
    if (index >= total) throw util::JsonError("woe column index out of range");
    WoeColumn::Table table;
    for (const auto& pair : entry.at("table").as_array()) {
      const auto& kv = pair.as_array();
      if (kv.size() != 2) throw util::JsonError("woe pair must have 2 entries");
      table[static_cast<std::int64_t>(kv[0].as_int())] = kv[1].as_number();
    }
    columns[index] = WoeColumn::from_table(std::move(table));
  }
  auto encoder = std::make_unique<WoeEncoder>();
  encoder->restore(std::move(columns));
  return encoder;
}

util::Json dt_to_json(const DecisionTree& model) {
  util::Json out;
  out.set("type", util::Json("dt"));
  util::JsonArray nodes;
  nodes.reserve(model.nodes().size());
  for (const auto& node : model.nodes()) {
    util::JsonObject obj;
    obj.emplace_back("l", util::Json(static_cast<std::int64_t>(node.left)));
    obj.emplace_back("r", util::Json(static_cast<std::int64_t>(node.right)));
    obj.emplace_back("f", util::Json(static_cast<std::int64_t>(node.feature)));
    obj.emplace_back("t", util::Json(node.threshold));
    obj.emplace_back("v", util::Json(node.value));
    nodes.emplace_back(std::move(obj));
  }
  out.set("nodes", util::Json(std::move(nodes)));
  return out;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

std::unique_ptr<DecisionTree> dt_from_json(const util::Json& json) {
  if (json.at("type").as_string() != "dt") throw util::JsonError("not a dt model");
  std::vector<DecisionTree::Node> nodes;
  for (const auto& entry : json.at("nodes").as_array()) {
    DecisionTree::Node node;
    node.left = static_cast<std::int32_t>(entry.at("l").as_int());
    node.right = static_cast<std::int32_t>(entry.at("r").as_int());
    node.feature = static_cast<std::uint32_t>(entry.at("f").as_int());
    node.threshold = entry.at("t").as_number();
    node.value = entry.at("v").as_number();
    nodes.push_back(node);
  }
  auto model = std::make_unique<DecisionTree>();
  model->restore(std::move(nodes));
  return model;
}

util::Json nn_to_json(const NeuralNet& model) {
  const auto weights = model.weights();
  util::Json out;
  out.set("type", util::Json("nn"));
  out.set("input_width", util::Json(static_cast<std::uint64_t>(weights.input_width)));
  out.set("w1", doubles_to_json(weights.w1));
  out.set("b1", doubles_to_json(weights.b1));
  out.set("w2", doubles_to_json(weights.w2));
  out.set("b2", util::Json(weights.b2));
  return out;
}

std::unique_ptr<NeuralNet> nn_from_json(const util::Json& json) {
  if (json.at("type").as_string() != "nn") throw util::JsonError("not a nn model");
  NeuralNet::Weights weights;
  weights.input_width = static_cast<std::size_t>(json.at("input_width").as_int());
  weights.w1 = doubles_from_json(json.at("w1"));
  weights.b1 = doubles_from_json(json.at("b1"));
  weights.w2 = doubles_from_json(json.at("w2"));
  weights.b2 = json.at("b2").as_number();
  auto model = std::make_unique<NeuralNet>();
  model->restore(std::move(weights));
  return model;
}

util::Json nbg_to_json(const GaussianNaiveBayes& model) {
  const auto params = model.trained_params();
  util::Json out;
  out.set("type", util::Json("nbg"));
  for (int c = 0; c < 2; ++c) {
    const std::string suffix = std::to_string(c);
    out.set("log_prior" + suffix, util::Json(params.log_prior[c]));
    out.set("mean" + suffix, doubles_to_json(params.mean[c]));
    out.set("var" + suffix, doubles_to_json(params.var[c]));
  }
  return out;
}

std::unique_ptr<GaussianNaiveBayes> nbg_from_json(const util::Json& json) {
  if (json.at("type").as_string() != "nbg")
    throw util::JsonError("not an nbg model");
  GaussianNaiveBayes::Params params;
  for (int c = 0; c < 2; ++c) {
    const std::string suffix = std::to_string(c);
    params.log_prior[c] = json.at("log_prior" + suffix).as_number();
    params.mean[c] = doubles_from_json(json.at("mean" + suffix));
    params.var[c] = doubles_from_json(json.at("var" + suffix));
  }
  auto model = std::make_unique<GaussianNaiveBayes>();
  model->restore(std::move(params));
  return model;
}

namespace {

util::Json stage_to_json(const Transformer& stage, std::size_t total_columns) {
  const std::string name = stage.name();
  util::Json out;
  out.set("stage", util::Json(name));
  if (name == "FR") {
    const auto& reducer = static_cast<const FeatureReducer&>(stage);
    util::JsonArray dropped;
    for (const std::size_t j : reducer.dropped())
      dropped.emplace_back(static_cast<std::uint64_t>(j));
    out.set("dropped", util::Json(std::move(dropped)));
  } else if (name == "I") {
    out.set("fill", util::Json(static_cast<const Imputer&>(stage).fill_value()));
  } else if (name == "WoE") {
    out.set("encoder",
            woe_to_json(static_cast<const WoeEncoder&>(stage), total_columns));
  } else if (name == "S") {
    const auto& standardizer = static_cast<const Standardizer&>(stage);
    out.set("means", doubles_to_json(standardizer.means()));
    out.set("stddevs", doubles_to_json(standardizer.stddevs()));
  } else if (name == "N") {
    const auto& normalizer = static_cast<const MinMaxNormalizer&>(stage);
    out.set("mins", doubles_to_json(normalizer.mins()));
    out.set("ranges", doubles_to_json(normalizer.ranges()));
  } else if (name == "PCA") {
    const auto& pca = static_cast<const Pca&>(stage);
    out.set("components", util::Json(static_cast<std::uint64_t>(pca.components())));
    out.set("input_width",
            util::Json(static_cast<std::uint64_t>(pca.input_width())));
    out.set("means", doubles_to_json(pca.means()));
    out.set("eigenvalues", doubles_to_json(pca.eigenvalues()));
    out.set("matrix", doubles_to_json(pca.components_matrix()));
  } else {
    throw std::invalid_argument("unsupported pipeline stage: " + name);
  }
  return out;
}

std::unique_ptr<Transformer> stage_from_json(const util::Json& json) {
  const std::string& name = json.at("stage").as_string();
  if (name == "FR") {
    std::vector<std::size_t> dropped;
    for (const auto& j : json.at("dropped").as_array())
      dropped.push_back(static_cast<std::size_t>(j.as_int()));
    auto reducer = std::make_unique<FeatureReducer>();
    reducer->restore(std::move(dropped));
    return reducer;
  }
  if (name == "I") return std::make_unique<Imputer>(json.at("fill").as_number());
  if (name == "WoE") return woe_from_json(json.at("encoder"));
  if (name == "S") {
    auto standardizer = std::make_unique<Standardizer>();
    standardizer->restore(doubles_from_json(json.at("means")),
                          doubles_from_json(json.at("stddevs")));
    return standardizer;
  }
  if (name == "N") {
    auto normalizer = std::make_unique<MinMaxNormalizer>();
    normalizer->restore(doubles_from_json(json.at("mins")),
                        doubles_from_json(json.at("ranges")));
    return normalizer;
  }
  if (name == "PCA") {
    auto pca = std::make_unique<Pca>();
    pca->restore(static_cast<std::size_t>(json.at("components").as_int()),
                 static_cast<std::size_t>(json.at("input_width").as_int()),
                 doubles_from_json(json.at("means")),
                 doubles_from_json(json.at("eigenvalues")),
                 doubles_from_json(json.at("matrix")));
    return pca;
  }
  throw util::JsonError("unknown pipeline stage: " + name);
}

util::Json classifier_to_json(const Classifier& classifier) {
  const std::string name = classifier.name();
  if (name == "XGB")
    return gbt_to_json(static_cast<const GradientBoostedTrees&>(classifier));
  if (name == "DT") return dt_to_json(static_cast<const DecisionTree&>(classifier));
  if (name == "LSVM") return lsvm_to_json(static_cast<const LinearSvm&>(classifier));
  if (name == "NN") return nn_to_json(static_cast<const NeuralNet&>(classifier));
  if (name == "NB-G")
    return nbg_to_json(static_cast<const GaussianNaiveBayes&>(classifier));
  if (name == "DUM") {
    util::Json out;
    out.set("type", util::Json("dum"));
    return out;
  }
  throw std::invalid_argument("unsupported classifier for serialization: " + name);
}

std::unique_ptr<Classifier> classifier_from_json(const util::Json& json) {
  const std::string& type = json.at("type").as_string();
  if (type == "gbt") return gbt_from_json(json);
  if (type == "dt") return dt_from_json(json);
  if (type == "lsvm") return lsvm_from_json(json);
  if (type == "nn") return nn_from_json(json);
  if (type == "nbg") return nbg_from_json(json);
  if (type == "dum") return std::make_unique<DummyClassifier>();
  throw util::JsonError("unknown classifier type: " + type);
}

}  // namespace

util::Json pipeline_to_json(const Pipeline& pipeline, std::size_t schema_columns) {
  util::Json out;
  out.set("type", util::Json("pipeline"));
  out.set("columns", util::Json(static_cast<std::uint64_t>(schema_columns)));
  util::JsonArray stages;
  for (std::size_t i = 0; i < pipeline.stage_count(); ++i) {
    stages.push_back(stage_to_json(pipeline.stage(i), schema_columns));
  }
  out.set("stages", util::Json(std::move(stages)));
  out.set("classifier", classifier_to_json(pipeline.classifier()));
  return out;
}

Pipeline pipeline_from_json(const util::Json& json) {
  if (json.at("type").as_string() != "pipeline")
    throw util::JsonError("not a pipeline document");
  Pipeline pipeline;
  for (const auto& stage : json.at("stages").as_array())
    pipeline.add(stage_from_json(stage));
  pipeline.set_classifier(classifier_from_json(json.at("classifier")));
  return pipeline;
}

}  // namespace scrubber::ml
