#pragma once
// Single-hidden-layer multilayer perceptron trained with Adam on binary
// cross-entropy — the NN model of Table 3, with the Table 4 grid
// hyperparameters (# hidden neurons, dropout, learning rate). The Figure 8
// pipeline runs PCA before this model, so input widths are modest.

#include <cstdint>
#include <vector>

#include "ml/classifier.hpp"

namespace scrubber::ml {

/// MLP hyperparameters (Table 4 grid; defaults = selected values).
struct NeuralNetParams {
  std::size_t hidden_units = 16;   ///< neurons in the hidden layer
  double dropout = 0.0;            ///< hidden-layer dropout probability
  double learning_rate = 2.5e-3;   ///< Adam step size
  std::size_t epochs = 40;         ///< training epochs
  std::size_t batch_size = 64;     ///< minibatch size
  std::uint64_t seed = 11;         ///< init/shuffle/dropout seed
};

/// Feed-forward binary classifier: input -> ReLU hidden -> sigmoid output.
class NeuralNet final : public Classifier {
 public:
  explicit NeuralNet(NeuralNetParams params = {}) noexcept : params_(params) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] double score(std::span<const double> row) const override;
  [[nodiscard]] std::string name() const override { return "NN"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<NeuralNet>(*this);
  }

  [[nodiscard]] const NeuralNetParams& params() const noexcept { return params_; }

  /// Trained weights (model_io).
  struct Weights {
    std::size_t input_width = 0;
    std::vector<double> w1, b1, w2;
    double b2 = 0.0;
  };
  [[nodiscard]] Weights weights() const {
    return Weights{input_width_, w1_, b1_, w2_, b2_};
  }

  /// Rebuilds a trained network (model_io).
  void restore(Weights weights) {
    input_width_ = weights.input_width;
    w1_ = std::move(weights.w1);
    b1_ = std::move(weights.b1);
    w2_ = std::move(weights.w2);
    b2_ = weights.b2;
  }

 private:
  NeuralNetParams params_;
  std::size_t input_width_ = 0;
  std::vector<double> w1_;  // hidden x input
  std::vector<double> b1_;  // hidden
  std::vector<double> w2_;  // hidden
  double b2_ = 0.0;
};

}  // namespace scrubber::ml
