#pragma once
// Content-hash-keyed cache of immutable BinnedMatrix instances, so grid
// search cells and repeated fits over the same encoded fold (the paper's
// central-retraining workload: Table 4 sweeps, the §drift rolling
// refresh) reuse one binned copy instead of re-sorting every column per
// fit.
//
// Keying is by VALUE, never by address: a 128-bit content hash over the
// dataset's raw cell bytes plus the exact binning parameters (rows, cols,
// max_bins, missing policy). Labels are excluded — binning never reads
// them. Two Dataset objects with equal cell bytes therefore share one
// matrix, and a cache hit returns a value bit-identical to a fresh
// build (BinnedMatrix construction is deterministic), so cache state can
// never change a training result.
//
// Thread-safe: concurrent get_or_build calls race benignly — both build
// on a shared miss, first insert wins, and both results are value-equal.
// The build itself runs outside the lock so independent datasets never
// serialize. Bounded: FIFO eviction beyond kCapacity entries. Hit/miss
// counters feed bench provenance (BENCH_training.json).

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ml/binned.hpp"

namespace scrubber::ml {

class BinCache {
 public:
  /// Entries kept before FIFO eviction: enough for a k-fold grid search
  /// (k live fold matrices) plus the full-set refit, small enough that a
  /// long-running retraining loop stays bounded.
  static constexpr std::size_t kCapacity = 8;

  /// Cache observability counters (monotonic since last clear()).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };

  /// The process-wide cache shared by every GBT fit.
  [[nodiscard]] static BinCache& instance();

  /// Returns the cached matrix for (data content, max_bins, policy),
  /// building and inserting it on a miss.
  [[nodiscard]] std::shared_ptr<const BinnedMatrix> get_or_build(
      const Dataset& data, std::size_t max_bins, MissingPolicy policy);

  [[nodiscard]] Stats stats() const;

  /// Drops every entry and zeroes the counters (tests, bench rows).
  void clear();

 private:
  /// Value identity of one binning request; hash128 covers the cell
  /// bytes, the explicit fields pin the dimensions and parameters so a
  /// (vanishingly unlikely) hash collision between different shapes can
  /// never alias.
  struct Key {
    std::uint64_t hash_lo = 0;
    std::uint64_t hash_hi = 0;
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    std::uint64_t max_bins = 0;
    MissingPolicy policy = MissingPolicy::kMinusOne;

    friend bool operator==(const Key&, const Key&) = default;
  };

  struct Entry {
    Key key;
    std::shared_ptr<const BinnedMatrix> matrix;
  };

  [[nodiscard]] static Key make_key(const Dataset& data, std::size_t max_bins,
                                    MissingPolicy policy) noexcept;

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  ///< insertion order (FIFO eviction)
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace scrubber::ml
