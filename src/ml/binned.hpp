#pragma once
// Quantile binning of a Dataset into compact per-column bin codes — the
// immutable input of the histogram GBT training engine (gbt.cpp) and the
// unit the BinCache (bin_cache.hpp) shares across repeated fits.
//
// Layout: column-major codes, one code per cell, `rows()` codes per
// column. When every column fits in 256 bins (the default max_bins=128
// always does) codes are stored as u8, halving the bandwidth of the
// histogram build; otherwise u16. Bin assignment is a branchless binary
// search (conditional-move reductions, no per-row `upper_bound` call)
// that computes exactly `#{edges <= value}` — the same bin the historical
// `std::upper_bound` assignment produced, bit for bit.
//
// Missing cells (NaN) follow the MissingPolicy:
//   * kMinusOne (legacy default): missing reads as -1.0 before binning,
//     so it shares a bin with a legitimate -1.0 feature value.
//   * kReservedBin: bin 0 is reserved for missing. Missing maps to -inf,
//     edges gain a leading sentinel of numeric_limits<double>::lowest(),
//     and every real value lands in bins >= 1 — no collision. A split at
//     bin 0 separates "missing" from "present"; its stored threshold is
//     the lowest() sentinel, which a scorer that reads missing as -inf
//     routes consistently (GbtParams::missing_surrogate).
//
// Construction fans out over the training pool per column; per-column
// results are bit-identical for any thread count. Instances are
// immutable after construction and safe to share across threads.

#include <cstdint>
#include <limits>
#include <vector>

#include "ml/dataset.hpp"

namespace scrubber::ml {

/// How missing (NaN) cells are binned; see the header comment.
enum class MissingPolicy : std::uint8_t {
  kMinusOne = 0,     ///< legacy: missing folds into the -1.0 value bin
  kReservedBin = 1,  ///< bin 0 belongs to missing alone
};

/// Split threshold stored for a reserved-missing-bin split (bin 0): below
/// every representable real value, so only the -inf missing surrogate
/// routes left at inference.
inline constexpr double kReservedMissingEdge =
    std::numeric_limits<double>::lowest();

/// The value a missing cell is mapped to before bin assignment.
[[nodiscard]] constexpr double missing_mapped_value(
    MissingPolicy policy) noexcept {
  return policy == MissingPolicy::kReservedBin
             ? -std::numeric_limits<double>::infinity()
             : -1.0;
}

/// Branchless upper_bound: `#{edges[i] <= v}` over ascending `edges`.
/// Pure conditional-move reduction — no data-dependent branch, so the
/// per-row bin assignment pipeline never stalls on a mispredict. NaN
/// inputs never reach this (missing is mapped first); -inf returns 0.
[[nodiscard]] inline std::uint32_t branchless_bin(const double* edges,
                                                  std::uint32_t n_edges,
                                                  double v) noexcept {
  std::uint32_t lo = 0;
  std::uint32_t len = n_edges;
  while (len > 0) {
    const std::uint32_t half = len >> 1;
    const bool right = edges[lo + half] <= v;
    lo = right ? lo + half + 1 : lo;
    len = right ? len - half - 1 : half;
  }
  return lo;
}

/// Quantile bin edges and a binned column-major copy of a dataset.
class BinnedMatrix {
 public:
  BinnedMatrix(const Dataset& data, std::size_t max_bins,
               MissingPolicy policy = MissingPolicy::kMinusOne);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t max_bins() const noexcept { return max_bins_; }
  [[nodiscard]] MissingPolicy policy() const noexcept { return policy_; }

  /// True when codes are stored as u8 (every column has <= 256 bins).
  [[nodiscard]] bool narrow() const noexcept { return codes16_.empty(); }

  /// Bins of column `col` (edges + 1), including the reserved missing bin
  /// under kReservedBin.
  [[nodiscard]] std::size_t bin_count(std::size_t col) const noexcept {
    return edges_[col].size() + 1;
  }

  /// Raw-value threshold of splitting "bin <= b" on column `col` (the
  /// upper edge of bin b). Under kReservedBin, b == 0 returns the
  /// kReservedMissingEdge sentinel.
  [[nodiscard]] double edge_value(std::size_t col, std::size_t b) const noexcept {
    return edges_[col][b];
  }

  /// Ascending edges of one column (tests / diagnostics).
  [[nodiscard]] const std::vector<double>& edges(std::size_t col) const noexcept {
    return edges_[col];
  }

  /// Bin code of one cell; width-agnostic accessor for cold paths
  /// (row routing, tests). Hot loops use codes<Code>() columns instead.
  [[nodiscard]] std::uint32_t bin(std::size_t row, std::size_t col) const noexcept {
    return narrow() ? codes8_[col * rows_ + row] : codes16_[col * rows_ + row];
  }

  /// Column base pointer of the packed codes; Code must match narrow().
  template <typename Code>
  [[nodiscard]] const Code* codes(std::size_t col) const noexcept {
    static_assert(sizeof(Code) == 1 || sizeof(Code) == 2,
                  "bin codes are u8 or u16");
    if constexpr (sizeof(Code) == 1) {
      return reinterpret_cast<const Code*>(codes8_.data() + col * rows_);
    } else {
      return reinterpret_cast<const Code*>(codes16_.data() + col * rows_);
    }
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t max_bins_ = 0;
  MissingPolicy policy_ = MissingPolicy::kMinusOne;
  std::vector<std::vector<double>> edges_;  ///< per column, ascending
  std::vector<std::uint8_t> codes8_;        ///< column-major (narrow())
  std::vector<std::uint16_t> codes16_;      ///< column-major (!narrow())
};

}  // namespace scrubber::ml
