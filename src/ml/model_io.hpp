#pragma once
// JSON (de)serialization of trained models and WoE encoders.
//
// This is the mechanism behind geographic model transfer (§6.4): a trained
// classifier can be exported at one IXP and imported at another, where it
// runs on top of the receiving site's *local* WoE encoding.

#include <memory>

#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/linear.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/neural_net.hpp"
#include "ml/pipeline.hpp"
#include "ml/woe.hpp"
#include "util/json.hpp"

namespace scrubber::ml {

/// Serializes a trained gradient-boosted-trees model.
[[nodiscard]] util::Json gbt_to_json(const GradientBoostedTrees& model);

/// Restores a gradient-boosted-trees model; throws util::JsonError.
[[nodiscard]] std::unique_ptr<GradientBoostedTrees> gbt_from_json(
    const util::Json& json);

/// Serializes a trained linear SVM.
[[nodiscard]] util::Json lsvm_to_json(const LinearSvm& model);

/// Restores a linear SVM; throws util::JsonError.
[[nodiscard]] std::unique_ptr<LinearSvm> lsvm_from_json(const util::Json& json);

/// Serializes a fitted WoE encoder (all per-column tables).
[[nodiscard]] util::Json woe_to_json(const WoeEncoder& encoder,
                                     std::size_t total_columns);

/// Restores a WoE encoder; throws util::JsonError.
[[nodiscard]] std::unique_ptr<WoeEncoder> woe_from_json(const util::Json& json);

/// Serializes a trained decision tree.
[[nodiscard]] util::Json dt_to_json(const DecisionTree& model);
[[nodiscard]] std::unique_ptr<DecisionTree> dt_from_json(const util::Json& json);

/// Serializes a trained neural network.
[[nodiscard]] util::Json nn_to_json(const NeuralNet& model);
[[nodiscard]] std::unique_ptr<NeuralNet> nn_from_json(const util::Json& json);

/// Serializes a trained Gaussian naive Bayes model.
[[nodiscard]] util::Json nbg_to_json(const GaussianNaiveBayes& model);
[[nodiscard]] std::unique_ptr<GaussianNaiveBayes> nbg_from_json(
    const util::Json& json);

/// Serializes a whole fitted pipeline: every preprocessing stage (FR, I,
/// WoE, S, N, PCA) plus the classifier (XGB, DT, LSVM, NN, NB-G, DUM).
/// This is the "deployable model file" an operator ships between sites
/// or persists across restarts. `schema_columns` is the raw input width.
/// Throws std::invalid_argument for unsupported stage/classifier types.
[[nodiscard]] util::Json pipeline_to_json(const Pipeline& pipeline,
                                          std::size_t schema_columns);

/// Restores a pipeline written by pipeline_to_json.
[[nodiscard]] Pipeline pipeline_from_json(const util::Json& json);

}  // namespace scrubber::ml
