#pragma once
// Gradient-boosted decision trees with second-order (Newton) boosting and
// histogram-based split finding — an XGBoost-style learner [Chen & Guestrin
// 2016], the model the paper recommends for deployment (Table 3).
//
// Training bins every feature into quantile buckets once, then grows each
// tree depth-wise, accumulating (gradient, hessian) histograms per node and
// scanning bins for the split maximizing the regularized gain
//   0.5 * ( GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda) ) - gamma.
// Per-feature total/average gain is recorded for the Figure 10 feature-
// importance analysis.

#include <cstdint>
#include <limits>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/compiled_tree.hpp"

namespace scrubber::ml {

/// Hyperparameters of the XGB model (grid of Table 4). The paper selected
/// max_depth 24 on ~250k-record folds; at this repo's scaled-down dataset
/// sizes a depth-8 default generalizes better and is what the benches use.
struct GbtParams {
  std::size_t n_estimators = 24;   ///< number of boosting rounds
  std::size_t max_depth = 8;       ///< maximum tree depth
  double learning_rate = 0.3;     ///< shrinkage per round (eta)
  double reg_lambda = 1.0;        ///< L2 regularization on leaf weights
  double gamma = 0.0;             ///< minimum gain to make a split
  double min_child_weight = 1.0;  ///< minimum hessian sum per child
  std::size_t max_bins = 128;     ///< histogram bins per feature
  /// Reserve a dedicated histogram bin for missing (NaN) cells instead of
  /// folding them into the -1.0 value bin (the historical behavior, which
  /// collides with a legitimate -1.0 feature value). Off by default: the
  /// legacy mapping keeps trained models byte-identical to the historical
  /// builder.
  bool missing_reserved_bin = false;

  /// The value a missing or out-of-range feature reads as during scoring.
  /// Legacy models use -1.0; reserved-bin models use -inf, which routes
  /// missing below the kReservedMissingEdge split threshold — consistent
  /// with the training-side reserved bin 0 (ml/binned.hpp).
  [[nodiscard]] double missing_surrogate() const noexcept {
    return missing_reserved_bin ? -std::numeric_limits<double>::infinity()
                                : -1.0;
  }
};

/// Per-feature importance aggregated over all splits.
struct FeatureGain {
  std::size_t feature = 0;
  double total_gain = 0.0;
  std::size_t split_count = 0;

  [[nodiscard]] double average_gain() const noexcept {
    return split_count == 0 ? 0.0
                            : total_gain / static_cast<double>(split_count);
  }
};

/// Gradient-boosted trees binary classifier with logistic loss.
class GradientBoostedTrees final : public Classifier {
 public:
  explicit GradientBoostedTrees(GbtParams params = {}) noexcept
      : params_(params) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] double score(std::span<const double> row) const override;
  /// Batch scoring through the compiled (flattened) forest; bit-identical
  /// to per-row score().
  void score_batch(const Dataset& data, std::span<double> out) const override;
  [[nodiscard]] std::string name() const override { return "XGB"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<GradientBoostedTrees>(*this);
  }

  /// Raw additive margin before the sigmoid.
  [[nodiscard]] double margin(std::span<const double> row) const;

  /// Feature importances sorted by descending average gain (Figure 10).
  [[nodiscard]] std::vector<FeatureGain> gain_importance() const;

  [[nodiscard]] const GbtParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }

  /// Serializable tree node (exposed for model_io).
  struct Node {
    std::int32_t left = -1;   ///< child for value <= threshold; -1 = leaf
    std::int32_t right = -1;
    std::uint32_t feature = 0;
    double threshold = 0.0;
    double value = 0.0;       ///< leaf weight (already shrunk)

    [[nodiscard]] bool is_leaf() const noexcept { return left < 0; }
  };
  using Tree = std::vector<Node>;

  [[nodiscard]] const std::vector<Tree>& trees() const noexcept { return trees_; }
  [[nodiscard]] double base_margin() const noexcept { return base_margin_; }

  /// Restores a trained model from serialized state (model_io).
  void restore(std::vector<Tree> trees, double base_margin, GbtParams params,
               std::vector<FeatureGain> importance);

  /// Flattened batch-inference form, rebuilt by fit()/restore().
  [[nodiscard]] const CompiledForest& compiled() const noexcept {
    return compiled_;
  }

 private:
  GbtParams params_;
  std::vector<Tree> trees_;
  double base_margin_ = 0.0;
  std::vector<FeatureGain> importance_;
  CompiledForest compiled_;
};

}  // namespace scrubber::ml
