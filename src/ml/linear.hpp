#pragma once
// Linear support vector machine trained with averaged stochastic
// (sub)gradient descent on the primal squared-hinge objective
//   min_w  0.5 ||w||^2 + C * sum_i max(0, 1 - y_i (w.x_i + b))^2
// matching scikit-learn's LinearSVC(loss="squared_hinge") searched in
// Table 4. Scores are calibrated through a logistic link on the margin.

#include <vector>

#include "ml/classifier.hpp"

namespace scrubber::ml {

/// LSVM hyperparameters (Table 4 grid). The paper selected C = 1e-5 on
/// ~800k-sample folds; the hinge term scales with the sample count, so at
/// this repo's dataset sizes C = 1.0 is the equivalent operating point
/// (the Table 4 bench sweeps the full grid).
struct LinearSvmParams {
  double c = 1.0;                ///< regularization trade-off (C)
  bool balanced_class_weight = false;  ///< reweight classes by inverse frequency
  std::size_t epochs = 30;       ///< SGD passes over the data
  double learning_rate = 0.05;   ///< initial step size (decays 1/sqrt(t))
  std::uint64_t seed = 7;        ///< shuffle seed
};

/// Linear SVM binary classifier.
class LinearSvm final : public Classifier {
 public:
  explicit LinearSvm(LinearSvmParams params = {}) noexcept : params_(params) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] double score(std::span<const double> row) const override;
  [[nodiscard]] std::string name() const override { return "LSVM"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<LinearSvm>(*this);
  }

  /// Signed distance to the separating hyperplane.
  [[nodiscard]] double margin(std::span<const double> row) const;

  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] double bias() const noexcept { return bias_; }

  /// Restores a trained model (model_io / cross-IXP transfer).
  void restore(std::vector<double> weights, double bias) {
    weights_ = std::move(weights);
    bias_ = bias;
  }

 private:
  LinearSvmParams params_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace scrubber::ml
