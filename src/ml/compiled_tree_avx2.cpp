// AVX2 lane-table kernels for CompiledTree / CompiledForest.
//
// This TU and util/simd.hpp are the only files allowed to use x86 vector
// intrinsics (scrubber-simd-isolation). Kernels carry
// __attribute__((target("avx2"))) instead of a per-file -mavx2 so no
// AVX2 codegen can leak into inline functions the linker might pick for
// other TUs; dispatch (util::simd_level()) guarantees they only run on
// machines whose cpuid reports AVX2.
//
// Bit-identity with the scalar oracle (compiled_tree.cpp) is argued op by
// op — see DESIGN.md §13 for the full contract:
//
//   * feature load: masked gather with the model's missing-surrogate
//     broadcast as the source (LaneTable::missing — -1.0 historically,
//     -inf for reserved-missing-bin GBT models), mask = unsigned
//     `feature < width`, then an ordered-compare blend replacing NaN with
//     the same surrogate — exactly the scalar "missing or out-of-range
//     reads as the surrogate".
//   * descent: _CMP_LE_OQ is IEEE `v <= threshold` (false on NaN, but NaN
//     was already substituted), so the left/right blend picks the same
//     child the scalar ternary does.
//   * lockstep depth: leaves self-loop in the lane table, so running
//     every lane exactly depth[tree] steps is a per-lane no-op past its
//     leaf — the cursor lands where the scalar while-loop stops.
//   * accumulate: _mm256_add_pd is four independent IEEE doubles adds; no
//     FMA, no reassociation, same per-row order (base margin, then trees
//     in table order) as the scalar path.

#include "ml/compiled_tree.hpp"

#if defined(SCRUBBER_AVX2) && SCRUBBER_AVX2 && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

#include <algorithm>

namespace scrubber::ml::detail {
namespace {

#define SCRUBBER_AVX2_FN \
  __attribute__((target("avx2"), always_inline)) inline

/// Four lockstep tree cursors: one lane group of rows descending one tree.
struct Lane4 {
  __m128i cur;     ///< absolute node indices into the lane table
  const double* rows;  ///< first row of this lane group
};

/// Compresses the four 64-bit compare masks of `m` into four packed
/// 32-bit lanes (all-ones / all-zeros), for blending the int32 cursors.
SCRUBBER_AVX2_FN __m128i mask_to_epi32(__m256d m) noexcept {
  const __m256i low_words = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  return _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_castpd_si256(m), low_words));
}

// All-lanes gathers via the masked intrinsics with a full mask: the exact
// same vgatherdpd/vpgatherdd instruction, but GCC's unmasked forms seed
// the destination with _mm256_undefined_pd(), which -Wmaybe-uninitialized
// (rightly) flags under -Werror.

SCRUBBER_AVX2_FN __m256d gather_pd(const double* base, __m128i idx) noexcept {
  return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, idx,
                                  _mm256_castsi256_pd(_mm256_set1_epi64x(-1)),
                                  8);
}

SCRUBBER_AVX2_FN __m128i gather_epi32(const std::int32_t* base,
                                      __m128i idx) noexcept {
  return _mm_mask_i32gather_epi32(_mm_setzero_si128(), base, idx,
                                  _mm_set1_epi32(-1), 4);
}

// scrubber-hot-begin

/// One lockstep descent step for four rows: gather the node fields, read
/// each lane's split feature (missing/out-of-range → `missing`, the
/// broadcast model surrogate), advance to the chosen child. Leaf lanes
/// self-loop, so stepping them is a no-op.
SCRUBBER_AVX2_FN void step4(const LaneTable& t, __m128i width_m1,
                            __m128i row_off, __m256d missing,
                            Lane4& g) noexcept {
  const __m256d thr = gather_pd(t.threshold.data(), g.cur);
  const __m128i feat = gather_epi32(t.feature.data(), g.cur);
  // Unsigned `feature < width` (width >= 1 here):
  // min_epu32(f, width-1) == f  ⟺  f <= width-1.
  const __m128i in_range =
      _mm_cmpeq_epi32(_mm_min_epu32(feat, width_m1), feat);
  // Sign-extend the 32-bit masks to the 64-bit gather mask: masked-off
  // lanes keep the surrogate source and NEVER touch memory, so
  // out-of-range feature indices cannot fault.
  const __m256d gather_mask =
      _mm256_castsi256_pd(_mm256_cvtepi32_epi64(in_range));
  __m256d v = _mm256_mask_i32gather_pd(
      missing, g.rows, _mm_add_epi32(feat, row_off), gather_mask, 8);
  // Missing cells (NaN) also read as the surrogate: keep v only where
  // ordered.
  v = _mm256_blendv_pd(missing, v, _mm256_cmp_pd(v, v, _CMP_ORD_Q));
  const __m128i go_left = mask_to_epi32(_mm256_cmp_pd(v, thr, _CMP_LE_OQ));
  const __m128i left = gather_epi32(t.left.data(), g.cur);
  const __m128i right = gather_epi32(t.right.data(), g.cur);
  g.cur = _mm_blendv_epi8(right, left, go_left);
}

SCRUBBER_AVX2_FN __m256d leaf_values(const LaneTable& t,
                                     const Lane4& g) noexcept {
  return gather_pd(t.value.data(), g.cur);
}

SCRUBBER_AVX2_FN Lane4 make_lane4(std::int32_t root, const double* rows,
                                  std::size_t base,
                                  std::size_t width) noexcept {
  return Lane4{_mm_set1_epi32(root), rows + base * width};
}

/// Folds one lane group of leaf values into out: += (forest margins) or
/// plain store (single-tree predictions).
template <bool kAccumulate>
SCRUBBER_AVX2_FN void emit(double* dst, __m256d leaves) noexcept {
  if constexpr (kAccumulate) {
    _mm256_storeu_pd(dst, _mm256_add_pd(_mm256_loadu_pd(dst), leaves));
  } else {
    _mm256_storeu_pd(dst, leaves);
  }
}

/// Shared tree-major driver. kAccumulate folds leaf values into out with
/// += (forest margins) or plain stores (single-tree predictions); the
/// ragged final group extracts lanes and applies the same IEEE add/store
/// per live row, so padded and tail handling stay bit-identical
/// (_mm256_add_pd is four independent scalar adds).
template <bool kAccumulate>
__attribute__((target("avx2"))) void descend_all(
    const LaneTable& t, const double* rows, std::size_t width,
    std::size_t n_live, std::size_t n_pad, double* out) noexcept {
  const __m128i width_m1 =
      _mm_set1_epi32(static_cast<std::int32_t>(width - 1));
  const auto w = static_cast<std::int32_t>(width);
  const __m128i row_off = _mm_setr_epi32(0, w, 2 * w, 3 * w);
  const __m256d missing = _mm256_set1_pd(t.missing);
  // Full lane groups the vector path emits directly; the 8-row unroll
  // runs two independent descents to hide gather latency.
  const std::size_t full4 = std::min(n_live, n_pad) & ~std::size_t{3};
  const std::size_t full8 = full4 & ~std::size_t{7};
  for (std::size_t tree = 0; tree < t.root.size(); ++tree) {
    const std::int32_t root = t.root[tree];
    const std::int32_t depth = t.depth[tree];
    std::size_t base = 0;
    for (; base < full8; base += 8) {
      Lane4 a = make_lane4(root, rows, base, width);
      Lane4 b = make_lane4(root, rows, base + 4, width);
      for (std::int32_t d = 0; d < depth; ++d) {
        step4(t, width_m1, row_off, missing, a);
        step4(t, width_m1, row_off, missing, b);
      }
      emit<kAccumulate>(out + base, leaf_values(t, a));
      emit<kAccumulate>(out + base + 4, leaf_values(t, b));
    }
    for (; base < full4; base += 4) {
      Lane4 a = make_lane4(root, rows, base, width);
      for (std::int32_t d = 0; d < depth; ++d) {
        step4(t, width_m1, row_off, missing, a);
      }
      emit<kAccumulate>(out + base, leaf_values(t, a));
    }
    if (base < n_pad) {  // ragged group: padded rows, n_live - base live
      Lane4 a = make_lane4(root, rows, base, width);
      for (std::int32_t d = 0; d < depth; ++d) {
        step4(t, width_m1, row_off, missing, a);
      }
      alignas(32) double leaf[4];
      _mm256_store_pd(leaf, leaf_values(t, a));
      for (std::size_t j = 0; base + j < n_live; ++j) {
        if constexpr (kAccumulate) {
          out[base + j] += leaf[j];
        } else {
          out[base + j] = leaf[j];
        }
      }
    }
  }
}

// scrubber-hot-end

#undef SCRUBBER_AVX2_FN

}  // namespace

__attribute__((target("avx2"))) void avx2_forest_margin(
    const LaneTable& table, const double* rows, std::size_t width,
    std::size_t n_live, std::size_t n_pad, double* out) noexcept {
  descend_all<true>(table, rows, width, n_live, n_pad, out);
}

__attribute__((target("avx2"))) void avx2_tree_predict(
    const LaneTable& table, const double* rows, std::size_t width,
    std::size_t n_live, std::size_t n_pad, double* out) noexcept {
  descend_all<false>(table, rows, width, n_live, n_pad, out);
}

}  // namespace scrubber::ml::detail

#else  // scalar-only build: dispatch can never select these.

#include <cstdlib>

namespace scrubber::ml::detail {

void avx2_forest_margin(const LaneTable&, const double*, std::size_t,
                        std::size_t, std::size_t, double*) noexcept {
  std::abort();  // unreachable: simd_level() caps at kScalar in this build
}

void avx2_tree_predict(const LaneTable&, const double*, std::size_t,
                       std::size_t, std::size_t, double*) noexcept {
  std::abort();
}

}  // namespace scrubber::ml::detail

#endif
