#pragma once
// Weight-of-Evidence (WoE) categorical encoder (§5.2.2 of the paper).
//
// Each categorical value x of a feature column is mapped to
//     WoE(x) = ln( P(X = x | y = 1) / P(X = x | y = 0) )
// with +1 count smoothing against division by zero, exactly as footnote 1
// prescribes. Values unseen during fit encode to 0.0 (neutral).
//
// WoE is the mechanism that (i) condenses high-cardinality categoricals
// (IPs, ports, member MACs) into one informative real value, (ii) carries
// the long-term memory of suspicious reflectors/ports, and (iii) separates
// *local* knowledge from the classifier, enabling model transfer between
// IXPs (§6.4). Operators can override individual encodings (white-/black-
// listing, §6.6 and Appendix E) via set_override().

#include <cstdint>
#include <optional>
#include <vector>

#include "ml/classifier.hpp"
#include "util/flat_hash.hpp"

namespace scrubber::ml {

/// WoE table of a single categorical column.
///
/// Both the count accumulator and the finished value -> WoE table live in
/// util::FlatHash: contiguous storage for the encode hot path, and
/// insertion-order iteration, which makes every serialization of a fitted
/// column deterministic (first-observation order) and lets from_table()
/// round-trip tables byte-identically — re-inserting in serialized order
/// reproduces the iteration order exactly.
class WoeColumn {
 public:
  /// Serialized form: value -> WoE, iterated in insertion order.
  using Table = util::FlatHash<std::int64_t, double>;

  /// Accumulates one observation of categorical value `value` with label y.
  void observe(std::int64_t value, int y) noexcept {
    auto& counts = counts_[value];
    (y == 1 ? counts.positive : counts.negative) += 1.0;
    (y == 1 ? total_positive_ : total_negative_) += 1.0;
  }

  /// Finalizes WoE scores from accumulated counts.
  void finalize();

  /// Exponentially decays all accumulated counts by `keep` in (0, 1] —
  /// the "forgetting" §6.3 identifies as the prerequisite for incremental
  /// learning with drifting features (repurposed reflector IPs). Call
  /// between update rounds, then observe() new data and finalize().
  /// Values whose counts decay below ~0.01 observations are dropped.
  void decay(double keep);

  /// WoE of a value; 0.0 (neutral) for values unseen during fit.
  [[nodiscard]] double encode(std::int64_t value) const noexcept {
    const double* woe = woe_.find(value);
    return woe == nullptr ? 0.0 : *woe;
  }

  /// Operator override: pins a value to a fixed WoE (e.g. whitelist HTTP
  /// with a negative score, blacklist a reflector with a positive one).
  void set_override(std::int64_t value, double woe) { woe_[value] = woe; }

  /// Values with WoE strictly above `threshold` (e.g. >1.0 for reflectors).
  [[nodiscard]] std::vector<std::int64_t> values_above(double threshold) const;

  /// Number of distinct values with a WoE entry.
  [[nodiscard]] std::size_t size() const noexcept { return woe_.size(); }

  /// Read-only access to the full table (insertion-ordered iteration via
  /// Table::for_each — the serialization order model_io writes).
  [[nodiscard]] const Table& table() const noexcept { return woe_; }

  /// Rebuilds a column from a serialized value -> WoE table (model_io).
  /// Insertion order of `table` becomes the column's iteration order, so
  /// save -> load -> save round trips are byte-identical.
  [[nodiscard]] static WoeColumn from_table(Table table) {
    WoeColumn column;
    column.woe_ = std::move(table);
    return column;
  }

 private:
  struct Counts {
    double positive = 0.0;
    double negative = 0.0;
  };

  util::FlatHash<std::int64_t, Counts> counts_;
  Table woe_;
  double total_positive_ = 0.0;
  double total_negative_ = 0.0;
};

/// Transformer that WoE-encodes all categorical columns of a dataset.
/// Numeric columns pass through unchanged. Missing values encode to 0.
class WoeEncoder final : public Transformer {
 public:
  /// `cross_fit_folds` > 1 enables out-of-fold encoding of *training*
  /// rows during fit_transform(): each row is encoded by tables built
  /// without it. This keeps the classifier from treating high-cardinality
  /// WoE columns (per-IP scores) as memorized row identifiers — an issue
  /// that only bites at our scaled-down data sizes; inference always uses
  /// the final tables fitted on all training data.
  explicit WoeEncoder(std::size_t cross_fit_folds = 5) noexcept
      : cross_fit_folds_(cross_fit_folds) {}

  void fit(const Dataset& data) override;
  void apply(std::span<double> row) const override;
  [[nodiscard]] Dataset fit_transform(const Dataset& data) override;

  /// Column-strip batch encode of a row-major cell block (`width` doubles
  /// per row): all rows of one categorical column are encoded before the
  /// next, so each column's WoE table stays cache-resident across the
  /// whole batch. Cell-for-cell the same operation as apply() row by row
  /// — bit-identical output, enforced by tests/ml/woe_test.cpp.
  void encode_rows(std::span<double> cells, std::size_t width) const;

  /// Batch override of the row-loop default: one encode_rows() pass over
  /// the dataset's cell buffer (WoE never changes row width).
  [[nodiscard]] Dataset apply_to_dataset(const Dataset& data) const override;

  /// Continuous-learning update: decays every column's counts by `keep`
  /// (1.0 = no forgetting), observes the new rows, and refinalizes the
  /// tables in place. Requires a prior fit() on the same schema; tables
  /// restored from JSON carry no counts and start accumulating afresh.
  void update(const Dataset& data, double keep = 1.0);
  [[nodiscard]] std::string name() const override { return "WoE"; }
  [[nodiscard]] std::unique_ptr<Transformer> clone() const override {
    return std::make_unique<WoeEncoder>(*this);
  }

  /// Per-column table access by column index (throws when the column was
  /// not categorical at fit time).
  [[nodiscard]] const WoeColumn& column(std::size_t index) const;
  [[nodiscard]] WoeColumn& column(std::size_t index);

  /// True when column `index` is WoE-encoded by this encoder.
  [[nodiscard]] bool encodes(std::size_t index) const noexcept {
    return index < columns_.size() && columns_[index].has_value();
  }

  /// Indices of encoded (categorical) columns.
  [[nodiscard]] std::vector<std::size_t> encoded_columns() const;

  /// Rebuilds the encoder from serialized per-column tables (model_io).
  void restore(std::vector<std::optional<WoeColumn>> columns) {
    columns_ = std::move(columns);
  }

 private:
  std::size_t cross_fit_folds_ = 5;
  std::vector<std::optional<WoeColumn>> columns_;
};

}  // namespace scrubber::ml
