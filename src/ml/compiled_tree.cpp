#include "ml/compiled_tree.hpp"

#include <algorithm>
#include <cmath>

#include "ml/dataset.hpp"

namespace scrubber::ml {
namespace {

/// Rows traversed per kernel block: enough independent walks to hide
/// node-fetch latency, small enough for stack-resident cursors.
constexpr std::size_t kBlockRows = 16;

/// Same sigmoid expression as the GBT scalar path (gbt.cpp) — batch and
/// scalar scores must agree bit-for-bit.
[[nodiscard]] double sigmoid(double x) noexcept {
  return 1.0 / (1.0 + std::exp(-x));
}

/// The one traversal rule, verbatim from DecisionTree::score /
/// GradientBoostedTrees::margin: missing (NaN) or out-of-range features
/// read as -1.0; v <= threshold goes left.
[[nodiscard]] std::uint32_t step(const CompiledNode& node, const double* row,
                                 std::size_t width) noexcept {
  const double v = node.feature < width && !is_missing(row[node.feature])
                       ? row[node.feature]
                       : -1.0;
  return static_cast<std::uint32_t>(v <= node.threshold ? node.left
                                                        : node.right);
}

[[nodiscard]] double traverse(const CompiledNode* nodes, std::uint32_t root,
                              const double* row, std::size_t width) noexcept {
  std::uint32_t index = root;
  while (!nodes[index].is_leaf()) index = step(nodes[index], row, width);
  return nodes[index].value;
}

/// Walks a block of rows through one tree in lockstep: each pass advances
/// every still-active row one level, so the independent node fetches
/// overlap instead of serializing down one row's path.
/// `cursor` holds each row's current node and ends at its leaf.
// scrubber-hot-begin
void walk_block(const CompiledNode* nodes, std::uint32_t root,
                const double* rows, std::size_t width, std::size_t n,
                std::uint32_t* cursor) noexcept {
  for (std::size_t j = 0; j < n; ++j) cursor[j] = root;
  bool active = true;
  while (active) {
    active = false;
    for (std::size_t j = 0; j < n; ++j) {
      const CompiledNode& node = nodes[cursor[j]];
      if (node.is_leaf()) continue;
      cursor[j] = step(node, rows + j * width, width);
      active = true;
    }
  }
}
// scrubber-hot-end

}  // namespace

double CompiledTree::predict(std::span<const double> row) const noexcept {
  if (nodes_.empty()) return 0.5;  // matches DecisionTree::score
  return traverse(nodes_.data(), 0, row.data(), row.size());
}

void CompiledTree::predict_batch(std::span<const double> rows,
                                 std::size_t width,
                                 std::span<double> out) const noexcept {
  const std::size_t n = out.size();
  if (nodes_.empty()) {
    std::fill(out.begin(), out.end(), 0.5);
    return;
  }
  std::uint32_t cursor[kBlockRows];
  for (std::size_t base = 0; base < n; base += kBlockRows) {
    const std::size_t m = std::min(kBlockRows, n - base);
    walk_block(nodes_.data(), 0, rows.data() + base * width, width, m, cursor);
    for (std::size_t j = 0; j < m; ++j) out[base + j] = nodes_[cursor[j]].value;
  }
}

double CompiledForest::margin(std::span<const double> row) const noexcept {
  double total = base_margin_;
  for (const std::uint32_t root : roots_) {
    total += traverse(nodes_.data(), root, row.data(), row.size());
  }
  return total;
}

double CompiledForest::score(std::span<const double> row) const noexcept {
  return sigmoid(margin(row));
}

void CompiledForest::margin_batch(std::span<const double> rows,
                                  std::size_t width,
                                  std::span<double> out) const noexcept {
  std::fill(out.begin(), out.end(), base_margin_);
  const std::size_t n = out.size();
  std::uint32_t cursor[kBlockRows];
  for (const std::uint32_t root : roots_) {
    for (std::size_t base = 0; base < n; base += kBlockRows) {
      const std::size_t m = std::min(kBlockRows, n - base);
      walk_block(nodes_.data(), root, rows.data() + base * width, width, m,
                 cursor);
      for (std::size_t j = 0; j < m; ++j) {
        out[base + j] += nodes_[cursor[j]].value;
      }
    }
  }
}

void CompiledForest::score_batch(std::span<const double> rows,
                                 std::size_t width,
                                 std::span<double> out) const noexcept {
  margin_batch(rows, width, out);
  for (double& s : out) s = sigmoid(s);
}

}  // namespace scrubber::ml
