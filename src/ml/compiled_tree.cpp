#include "ml/compiled_tree.hpp"

#include <algorithm>
#include <cmath>

#include "ml/dataset.hpp"
#include "util/simd.hpp"

namespace scrubber::ml {
namespace {

/// Rows traversed per kernel block: enough independent walks to hide
/// node-fetch latency, small enough for stack-resident cursors.
constexpr std::size_t kBlockRows = 16;

/// Same sigmoid expression as the GBT scalar path (gbt.cpp) — batch and
/// scalar scores must agree bit-for-bit.
[[nodiscard]] double sigmoid(double x) noexcept {
  return 1.0 / (1.0 + std::exp(-x));
}

/// The one traversal rule, verbatim from DecisionTree::score /
/// GradientBoostedTrees::margin: missing (NaN) or out-of-range features
/// read as the model's surrogate value (-1.0 historically, -inf for
/// reserved-missing-bin GBT models); v <= threshold goes left.
[[nodiscard]] std::uint32_t step(const CompiledNode& node, const double* row,
                                 std::size_t width, double missing) noexcept {
  const double v = node.feature < width && !is_missing(row[node.feature])
                       ? row[node.feature]
                       : missing;
  return static_cast<std::uint32_t>(v <= node.threshold ? node.left
                                                        : node.right);
}

[[nodiscard]] double traverse(const CompiledNode* nodes, std::uint32_t root,
                              const double* row, std::size_t width,
                              double missing) noexcept {
  std::uint32_t index = root;
  while (!nodes[index].is_leaf()) {
    index = step(nodes[index], row, width, missing);
  }
  return nodes[index].value;
}

/// Walks a block of rows through one tree in lockstep: each pass advances
/// every still-active row one level, so the independent node fetches
/// overlap instead of serializing down one row's path.
/// `cursor` holds each row's current node and ends at its leaf.
// scrubber-hot-begin
void walk_block(const CompiledNode* nodes, std::uint32_t root,
                const double* rows, std::size_t width, std::size_t n,
                double missing, std::uint32_t* cursor) noexcept {
  for (std::size_t j = 0; j < n; ++j) cursor[j] = root;
  bool active = true;
  while (active) {
    active = false;
    for (std::size_t j = 0; j < n; ++j) {
      const CompiledNode& node = nodes[cursor[j]];
      if (node.is_leaf()) continue;
      cursor[j] = step(node, rows + j * width, width, missing);
      active = true;
    }
  }
}
// scrubber-hot-end

/// Rows the AVX2 kernel should traverse for an out.size() == n batch, or 0
/// to stay scalar. Padded assembly (rows holds ceil(n / kSimdLaneRows) full
/// rows, Dataset::raw_padded) lets the kernel own the ragged tail; an
/// unpadded span caps it at the last full lane group and the scalar oracle
/// finishes rows [n_pad, n).
[[nodiscard]] std::size_t simd_pad_rows(std::size_t rows_size,
                                        std::size_t width,
                                        std::size_t n) noexcept {
  if (util::simd_level() != util::SimdLevel::kAvx2) return 0;
  if (width == 0 || n < kSimdLaneRows) return 0;
  const std::size_t padded =
      (n + kSimdLaneRows - 1) / kSimdLaneRows * kSimdLaneRows;
  if (rows_size / width >= padded) return padded;
  return n & ~(kSimdLaneRows - 1);
}

}  // namespace

namespace detail {

void append_lane_tree(const std::vector<CompiledNode>& nodes,
                      std::uint32_t root, std::size_t count, LaneTable& out) {
  out.root.push_back(static_cast<std::int32_t>(root));
  // BFS layout ⇒ parents precede children, so one forward pass assigns
  // levels; the tree's max level is the lockstep descent count.
  std::vector<std::int32_t> level(count, 0);
  std::int32_t max_level = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const CompiledNode& node = nodes[root + i];
    const auto self = static_cast<std::int32_t>(root + i);
    out.threshold.push_back(node.is_leaf() ? 0.0 : node.threshold);
    out.value.push_back(node.value);
    out.feature.push_back(
        node.is_leaf() ? 0 : static_cast<std::int32_t>(node.feature));
    out.left.push_back(node.is_leaf() ? self : node.left);
    out.right.push_back(node.is_leaf() ? self : node.right);
    if (!node.is_leaf()) {
      level[static_cast<std::size_t>(node.left) - root] = level[i] + 1;
      level[static_cast<std::size_t>(node.right) - root] = level[i] + 1;
    }
    max_level = std::max(max_level, level[i]);
  }
  out.depth.push_back(max_level);
}

}  // namespace detail

void CompiledTree::build_lanes() {
  lanes_ = detail::LaneTable{};
  if (nodes_.empty()) return;
  detail::append_lane_tree(nodes_, 0, nodes_.size(), lanes_);
}

void CompiledForest::build_lanes() {
  lanes_ = detail::LaneTable{};
  lanes_.missing = missing_;
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    const std::size_t end =
        t + 1 < roots_.size() ? roots_[t + 1] : nodes_.size();
    if (end == roots_[t]) {
      // A tree with no nodes would walk out of the table (scalar and
      // vector alike); leave the lane table empty so dispatch stays on
      // the oracle path and the bug surfaces in one place.
      lanes_ = detail::LaneTable{};
      return;
    }
    detail::append_lane_tree(nodes_, roots_[t], end - roots_[t], lanes_);
  }
}

double CompiledTree::predict(std::span<const double> row) const noexcept {
  if (nodes_.empty()) return 0.5;  // matches DecisionTree::score
  return traverse(nodes_.data(), 0, row.data(), row.size(), -1.0);
}

void CompiledTree::predict_batch(std::span<const double> rows,
                                 std::size_t width,
                                 std::span<double> out) const noexcept {
  const std::size_t n = out.size();
  if (nodes_.empty()) {
    std::fill(out.begin(), out.end(), 0.5);
    return;
  }
  std::size_t done = 0;
  if (const std::size_t n_pad = simd_pad_rows(rows.size(), width, n);
      n_pad != 0 && !lanes_.empty()) {
    done = std::min(n, n_pad);
    detail::avx2_tree_predict(lanes_, rows.data(), width, done, n_pad,
                              out.data());
  }
  std::uint32_t cursor[kBlockRows];
  for (std::size_t base = done; base < n; base += kBlockRows) {
    const std::size_t m = std::min(kBlockRows, n - base);
    walk_block(nodes_.data(), 0, rows.data() + base * width, width, m, -1.0,
               cursor);
    for (std::size_t j = 0; j < m; ++j) out[base + j] = nodes_[cursor[j]].value;
  }
}

double CompiledForest::margin(std::span<const double> row) const noexcept {
  double total = base_margin_;
  for (const std::uint32_t root : roots_) {
    total += traverse(nodes_.data(), root, row.data(), row.size(), missing_);
  }
  return total;
}

double CompiledForest::score(std::span<const double> row) const noexcept {
  return sigmoid(margin(row));
}

void CompiledForest::margin_batch(std::span<const double> rows,
                                  std::size_t width,
                                  std::span<double> out) const noexcept {
  std::fill(out.begin(), out.end(), base_margin_);
  const std::size_t n = out.size();
  std::size_t done = 0;
  if (const std::size_t n_pad = simd_pad_rows(rows.size(), width, n);
      n_pad != 0 && !lanes_.empty()) {
    done = std::min(n, n_pad);
    detail::avx2_forest_margin(lanes_, rows.data(), width, done, n_pad,
                               out.data());
  }
  if (done == n) return;
  std::uint32_t cursor[kBlockRows];
  for (const std::uint32_t root : roots_) {
    for (std::size_t base = done; base < n; base += kBlockRows) {
      const std::size_t m = std::min(kBlockRows, n - base);
      walk_block(nodes_.data(), root, rows.data() + base * width, width, m,
                 missing_, cursor);
      for (std::size_t j = 0; j < m; ++j) {
        out[base + j] += nodes_[cursor[j]].value;
      }
    }
  }
}

void CompiledForest::score_batch(std::span<const double> rows,
                                 std::size_t width,
                                 std::span<double> out) const noexcept {
  margin_batch(rows, width, out);
  for (double& s : out) s = sigmoid(s);
}

}  // namespace scrubber::ml
