#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "util/thread_pool.hpp"

namespace scrubber::ml {
namespace {

/// Gini impurity of a node with `pos` positives among `n` samples.
[[nodiscard]] double gini(std::size_t pos, std::size_t n) noexcept {
  if (n == 0) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(n);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

/// Recursive CART builder operating on an index workspace.
class TreeBuilder {
 public:
  TreeBuilder(const Dataset& data, const DecisionTreeParams& params,
              std::vector<DecisionTree::Node>& nodes)
      : data_(data), params_(params), nodes_(nodes) {}

  void build() {
    std::vector<std::size_t> indices(data_.n_rows());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    grow(indices, 0);
  }

 private:
  struct Split {
    std::size_t feature = 0;
    double threshold = 0.0;
    double gain = -1.0;  // weighted impurity decrease
  };

  std::int32_t grow(std::vector<std::size_t>& indices, std::size_t depth) {
    const std::size_t n = indices.size();
    std::size_t pos = 0;
    for (const std::size_t i : indices) pos += static_cast<std::size_t>(data_.label(i) == 1);

    DecisionTree::Node node;
    node.samples = n;
    node.impurity = gini(pos, n);
    node.value = n == 0 ? 0.0 : static_cast<double>(pos) / static_cast<double>(n);

    const auto index = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(node);

    const bool depth_ok = params_.max_depth == 0 || depth < params_.max_depth;
    if (!depth_ok || n < params_.min_samples_split || pos == 0 || pos == n)
      return index;

    const Split split = best_split(indices, node.impurity);
    if (split.gain <= 0.0) return index;
    // Weighted impurity decrease criterion (as in scikit-learn).
    const double weighted_gain =
        split.gain * static_cast<double>(n) / static_cast<double>(data_.n_rows());
    if (weighted_gain < params_.min_impurity_decrease) return index;

    std::vector<std::size_t> left_idx, right_idx;
    left_idx.reserve(n);
    right_idx.reserve(n);
    for (const std::size_t i : indices) {
      (data_.at(i, split.feature) <= split.threshold ? left_idx : right_idx)
          .push_back(i);
    }
    if (left_idx.size() < params_.min_samples_leaf ||
        right_idx.size() < params_.min_samples_leaf)
      return index;

    indices.clear();
    indices.shrink_to_fit();  // release workspace before recursion

    // Re-index after each grow(): recursion may reallocate nodes_.
    const auto at = static_cast<std::size_t>(index);
    nodes_[at].feature = static_cast<std::uint32_t>(split.feature);
    nodes_[at].threshold = split.threshold;
    const std::int32_t left = grow(left_idx, depth + 1);
    nodes_[at].left = left;
    const std::int32_t right = grow(right_idx, depth + 1);
    nodes_[at].right = right;
    return index;
  }

  /// Exact best split over all features: sort by value, scan boundaries.
  /// Features fan out over the training pool in contiguous chunks; each
  /// chunk keeps its own running best and the chunk bests merge in
  /// ascending chunk order, which equals the sequential ascending-feature
  /// fold (strict `>` keeps the earliest maximum) for any chunk
  /// partition — so the chosen split is bit-identical for any thread
  /// count. Small nodes stay sequential: the dispatch would cost more
  /// than the scan.
  [[nodiscard]] Split best_split(const std::vector<std::size_t>& indices,
                                 double parent_impurity) const {
    const std::size_t n = indices.size();
    util::ThreadPool& pool = util::training_pool();
    constexpr std::size_t kMinRowsForParallelSplit = 512;
    const std::size_t max_chunks = n < kMinRowsForParallelSplit ? 1 : 0;
    const std::size_t n_chunks = pool.plan_chunks(data_.n_cols(), max_chunks);
    std::vector<Split> chunk_best(n_chunks);
    pool.parallel_for_chunks(
        data_.n_cols(),
        [&](std::size_t chunk, std::size_t f_begin, std::size_t f_end) {
          Split best;
          std::vector<std::pair<double, int>> values(n);
          for (std::size_t feature = f_begin; feature < f_end; ++feature) {
            for (std::size_t k = 0; k < n; ++k) {
              const std::size_t i = indices[k];
              const double v = data_.at(i, feature);
              values[k] = {is_missing(v) ? -1.0 : v, data_.label(i)};
            }
            std::sort(values.begin(), values.end());
            if (values.front().first == values.back().first) continue;

            std::size_t left_n = 0, left_pos = 0;
            std::size_t total_pos = 0;
            for (const auto& [v, y] : values)
              total_pos += static_cast<std::size_t>(y == 1);

            for (std::size_t k = 0; k + 1 < n; ++k) {
              ++left_n;
              left_pos += static_cast<std::size_t>(values[k].second == 1);
              if (values[k].first == values[k + 1].first) continue;
              const std::size_t right_n = n - left_n;
              if (left_n < params_.min_samples_leaf ||
                  right_n < params_.min_samples_leaf)
                continue;
              const double wl =
                  static_cast<double>(left_n) / static_cast<double>(n);
              const double wr = 1.0 - wl;
              const double child_impurity =
                  wl * gini(left_pos, left_n) +
                  wr * gini(total_pos - left_pos, right_n);
              const double gain = parent_impurity - child_impurity;
              if (gain > best.gain) {
                best.feature = feature;
                best.threshold = (values[k].first + values[k + 1].first) / 2.0;
                best.gain = gain;
              }
            }
          }
          chunk_best[chunk] = best;
        },
        max_chunks);
    Split best;
    for (const Split& candidate : chunk_best) {
      if (candidate.gain > best.gain) best = candidate;
    }
    return best;
  }

  const Dataset& data_;
  const DecisionTreeParams& params_;
  std::vector<DecisionTree::Node>& nodes_;
};

void DecisionTree::fit(const Dataset& data) {
  // scrubber-deterministic-begin
  nodes_.clear();
  if (data.n_rows() == 0) {
    nodes_.push_back(Node{});
    compiled_ = CompiledTree::compile(nodes_);
    return;
  }
  TreeBuilder builder(data, params_, nodes_);
  builder.build();
  if (params_.ccp_alpha > 0.0) prune_ccp();
  compiled_ = CompiledTree::compile(nodes_);
  // scrubber-deterministic-end
}

void DecisionTree::prune_ccp() {
  // Weakest-link pruning: repeatedly collapse the internal node with the
  // smallest effective alpha until it exceeds ccp_alpha.
  auto subtree_stats = [&](auto&& self, std::int32_t index,
                           double& risk, std::size_t& leaves) -> void {
    const Node& node = nodes_[static_cast<std::size_t>(index)];
    if (node.is_leaf()) {
      risk += node.impurity * static_cast<double>(node.samples);
      ++leaves;
      return;
    }
    self(self, node.left, risk, leaves);
    self(self, node.right, risk, leaves);
  };

  const double total = static_cast<double>(nodes_.empty() ? 1 : nodes_[0].samples);
  while (true) {
    double best_alpha = std::numeric_limits<double>::infinity();
    std::int32_t best_node = -1;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].is_leaf()) continue;
      double subtree_risk = 0.0;
      std::size_t leaves = 0;
      subtree_stats(subtree_stats, static_cast<std::int32_t>(i), subtree_risk, leaves);
      const double node_risk =
          nodes_[i].impurity * static_cast<double>(nodes_[i].samples);
      const double alpha =
          (node_risk - subtree_risk) / (total * static_cast<double>(leaves - 1));
      if (alpha < best_alpha) {
        best_alpha = alpha;
        best_node = static_cast<std::int32_t>(i);
      }
    }
    if (best_node < 0 || best_alpha > params_.ccp_alpha) break;
    auto& node = nodes_[static_cast<std::size_t>(best_node)];
    node.left = -1;
    node.right = -1;
  }
}

double DecisionTree::score(std::span<const double> row) const {
  if (nodes_.empty()) return 0.5;
  std::size_t index = 0;
  while (!nodes_[index].is_leaf()) {
    const Node& node = nodes_[index];
    const double v =
        node.feature < row.size() && !is_missing(row[node.feature])
            ? row[node.feature]
            : -1.0;
    index = static_cast<std::size_t>(v <= node.threshold ? node.left : node.right);
  }
  return nodes_[index].value;
}

void DecisionTree::score_batch(const Dataset& data,
                               std::span<double> out) const {
  // Padded assembly (see GradientBoostedTrees::score_batch): lets the
  // AVX2 kernel cover the ragged tail with full lane groups.
  std::vector<double> padded;
  compiled_.predict_batch(data.raw_padded(kSimdLaneRows, padded),
                          data.n_cols(), out);
}

std::size_t DecisionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  std::size_t max_depth = 0;
  // Iterative DFS with explicit depth tracking.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& node = nodes_[index];
    if (!node.is_leaf()) {
      stack.emplace_back(static_cast<std::size_t>(node.left), depth + 1);
      stack.emplace_back(static_cast<std::size_t>(node.right), depth + 1);
    }
  }
  return max_depth;
}

}  // namespace scrubber::ml
