#pragma once
// Binary classification metrics used throughout the evaluation: confusion
// matrix, rates, F1 and the paper's F_beta (beta = 0.5, weighting false
// positives more heavily than false negatives — see §6.1).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace scrubber::ml {

/// Binary confusion matrix with derived rates and F-scores.
struct ConfusionMatrix {
  std::uint64_t tp = 0;
  std::uint64_t tn = 0;
  std::uint64_t fp = 0;
  std::uint64_t fn = 0;

  /// Accumulates one (truth, prediction) pair.
  void add(int truth, int predicted) noexcept {
    if (truth == 1) {
      (predicted == 1 ? tp : fn) += 1;
    } else {
      (predicted == 1 ? fp : tn) += 1;
    }
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return tp + tn + fp + fn; }

  /// True positive rate (recall / sensitivity); 0 when no positives.
  [[nodiscard]] double tpr() const noexcept {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
  }
  /// True negative rate (specificity).
  [[nodiscard]] double tnr() const noexcept {
    return tn + fp == 0 ? 0.0 : static_cast<double>(tn) / static_cast<double>(tn + fp);
  }
  /// False positive rate.
  [[nodiscard]] double fpr() const noexcept {
    return tn + fp == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(tn + fp);
  }
  /// False negative rate.
  [[nodiscard]] double fnr() const noexcept {
    return tp + fn == 0 ? 0.0 : static_cast<double>(fn) / static_cast<double>(tp + fn);
  }
  /// Precision (positive predictive value).
  [[nodiscard]] double precision() const noexcept {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
  }
  /// Recall; alias of tpr().
  [[nodiscard]] double recall() const noexcept { return tpr(); }
  /// Accuracy.
  [[nodiscard]] double accuracy() const noexcept {
    return total() == 0 ? 0.0
                        : static_cast<double>(tp + tn) / static_cast<double>(total());
  }

  /// F1 = tp / (tp + (fp + fn) / 2), the harmonic mean of precision/recall.
  [[nodiscard]] double f1() const noexcept { return f_beta(1.0); }

  /// F_beta = (1 + b^2) tp / ((1 + b^2) tp + b^2 fn + fp). The paper uses
  /// beta = 0.5 so that false positives weigh more than false negatives.
  [[nodiscard]] double f_beta(double beta) const noexcept {
    const double b2 = beta * beta;
    const double num = (1.0 + b2) * static_cast<double>(tp);
    const double den = num + b2 * static_cast<double>(fn) + static_cast<double>(fp);
    return den == 0.0 ? 0.0 : num / den;
  }

  /// One-line summary for logs.
  [[nodiscard]] std::string summary() const;
};

/// Builds a confusion matrix from parallel truth/prediction spans.
[[nodiscard]] ConfusionMatrix evaluate(std::span<const int> truth,
                                       std::span<const int> predicted);

/// Area under the ROC curve from probability-like scores; equals the
/// probability that a random positive outscores a random negative
/// (Mann-Whitney U, tie-corrected). Returns 0.5 when a class is empty.
[[nodiscard]] double roc_auc(std::span<const int> truth,
                             std::span<const double> scores);

/// One point of a threshold sweep.
struct ThresholdPoint {
  double threshold = 0.5;
  ConfusionMatrix cm;
};

/// Confusion matrices across score thresholds (ascending); useful for
/// picking the operating point that maximizes F_beta.
[[nodiscard]] std::vector<ThresholdPoint> threshold_sweep(
    std::span<const int> truth, std::span<const double> scores,
    std::span<const double> thresholds);

/// The threshold from `thresholds` maximizing F_beta.
[[nodiscard]] double best_fbeta_threshold(std::span<const int> truth,
                                          std::span<const double> scores,
                                          std::span<const double> thresholds,
                                          double beta = 0.5);

}  // namespace scrubber::ml
