#pragma once
// Preprocessing + classifier pipelines (Figure 8 of the paper).
//
// A Pipeline owns an ordered list of Transformers and a final Classifier.
// fit() fits each stage on the output of the previous stages and then the
// classifier; predict()/score() push a raw feature row through all stages.
// The WoE stage can be swapped independently of the classifier, which is
// exactly the cross-IXP transfer experiment of §6.4 (Figure 12, right).

#include <memory>
#include <vector>

#include "ml/classifier.hpp"

namespace scrubber::ml {

/// An end-to-end model: transformers followed by a classifier.
class Pipeline {
 public:
  Pipeline() = default;

  /// Builder-style stage registration (call before fit()).
  Pipeline& add(std::unique_ptr<Transformer> stage) {
    stages_.push_back(std::move(stage));
    return *this;
  }
  Pipeline& set_classifier(std::unique_ptr<Classifier> classifier) {
    classifier_ = std::move(classifier);
    return *this;
  }

  /// Fits all stages and the classifier on `data`.
  void fit(const Dataset& data);

  /// Applies all fitted transformer stages to a raw row; returns the
  /// feature vector the classifier consumes.
  [[nodiscard]] std::vector<double> transform(std::span<const double> row) const;

  /// Probability-like score for a raw feature row.
  [[nodiscard]] double score(std::span<const double> row) const;

  /// Scores every raw row of `data` in one pass: transforms the dataset
  /// stage-by-stage, then hands the materialized matrix to the
  /// classifier's batch kernel. Every stage is row-independent, so the
  /// scores are bit-identical to per-row score().
  [[nodiscard]] std::vector<double> score_all(const Dataset& data) const;

  /// Hard prediction for a raw feature row.
  [[nodiscard]] int predict(std::span<const double> row) const {
    return score(row) >= 0.5 ? 1 : 0;
  }

  /// Batch prediction over raw rows of a dataset.
  [[nodiscard]] std::vector<int> predict_all(const Dataset& data) const;

  /// Materializes the fully transformed dataset (used by fit internally
  /// and by analyses that inspect the encoded feature space).
  [[nodiscard]] Dataset transform_dataset(const Dataset& data) const;

  /// Access to stages for inspection (e.g. the WoE encoder).
  [[nodiscard]] std::size_t stage_count() const noexcept { return stages_.size(); }
  [[nodiscard]] Transformer& stage(std::size_t i) { return *stages_.at(i); }
  [[nodiscard]] const Transformer& stage(std::size_t i) const {
    return *stages_.at(i);
  }

  /// First stage with the given name() (e.g. "WoE"), or nullptr.
  [[nodiscard]] Transformer* find_stage(std::string_view name);
  [[nodiscard]] const Transformer* find_stage(std::string_view name) const;

  /// Swaps in a different (already trained elsewhere) classifier while
  /// keeping the locally fitted transformers — the §6.4 transfer mode.
  void swap_classifier(std::unique_ptr<Classifier> classifier) {
    classifier_ = std::move(classifier);
  }

  [[nodiscard]] Classifier& classifier() { return *classifier_; }
  [[nodiscard]] const Classifier& classifier() const { return *classifier_; }
  [[nodiscard]] bool has_classifier() const noexcept {
    return classifier_ != nullptr;
  }

  /// Deep copy of the whole pipeline (stages + classifier).
  [[nodiscard]] Pipeline clone() const;

  /// "FR->I->WoE->C(XGB)"-style description.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<std::unique_ptr<Transformer>> stages_;
  std::unique_ptr<Classifier> classifier_;
};

/// The model selection of Figure 8. Builds the per-model pipeline with its
/// specific preprocessing chain:
///   XGB/DT:  FR -> I -> WoE -> C
///   NB-*:    FR -> I -> WoE -> N -> C
///   LSVM:    FR -> I -> WoE -> S -> N -> C
///   NN:      FR -> I -> WoE -> S -> PCA -> N -> C
///   DUM:     C
enum class ModelKind {
  kXgb, kDecisionTree, kNeuralNet, kLinearSvm,
  kNaiveBayesGaussian, kNaiveBayesMultinomial, kNaiveBayesComplement,
  kNaiveBayesBernoulli, kDummy,
};

/// Display name matching Tables 3/5 ("XGB", "NN", "LSVM", "NB-G", ...).
[[nodiscard]] std::string_view model_kind_name(ModelKind kind) noexcept;

/// Builds the Figure 8 pipeline for a model with its default (Table 4
/// selected) hyperparameters. `pca_components` applies to NN only.
[[nodiscard]] Pipeline make_model_pipeline(ModelKind kind,
                                           std::size_t pca_components = 50);

/// All model kinds evaluated in Table 5, in the paper's order.
[[nodiscard]] std::span<const ModelKind> all_model_kinds() noexcept;

}  // namespace scrubber::ml
