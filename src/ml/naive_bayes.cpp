#include "ml/naive_bayes.hpp"

#include <cmath>

namespace scrubber::ml {
namespace {

/// Converts two class log-scores to P(y=1) via a stable softmax.
[[nodiscard]] double softmax_positive(double log0, double log1) noexcept {
  const double m = std::max(log0, log1);
  const double e0 = std::exp(log0 - m);
  const double e1 = std::exp(log1 - m);
  return e1 / (e0 + e1);
}

[[nodiscard]] double cell(std::span<const double> row, std::size_t j) noexcept {
  return j < row.size() && !is_missing(row[j]) ? row[j] : 0.0;
}

}  // namespace

void GaussianNaiveBayes::fit(const Dataset& data) {
  const std::size_t d = data.n_cols();
  const std::size_t n = data.n_rows();
  std::size_t counts[2] = {0, 0};
  for (int c = 0; c < 2; ++c) {
    mean_[c].assign(d, 0.0);
    var_[c].assign(d, 1.0);  // unit variance when untrained: finite scores
  }
  if (n == 0) return;
  for (int c = 0; c < 2; ++c) var_[c].assign(d, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    const int c = data.label(i) == 1 ? 1 : 0;
    ++counts[c];
    const auto row = data.row(i);
    for (std::size_t j = 0; j < d; ++j) mean_[c][j] += cell(row, j);
  }
  for (int c = 0; c < 2; ++c) {
    if (counts[c] == 0) continue;
    for (std::size_t j = 0; j < d; ++j)
      mean_[c][j] /= static_cast<double>(counts[c]);
  }
  double max_var = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int c = data.label(i) == 1 ? 1 : 0;
    const auto row = data.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      const double dv = cell(row, j) - mean_[c][j];
      var_[c][j] += dv * dv;
    }
  }
  for (int c = 0; c < 2; ++c) {
    if (counts[c] == 0) continue;
    for (std::size_t j = 0; j < d; ++j) {
      var_[c][j] /= static_cast<double>(counts[c]);
      max_var = std::max(max_var, var_[c][j]);
    }
  }
  // Variance smoothing: add a fraction of the largest variance (sklearn).
  const double smoothing = var_smoothing_ * (max_var > 0.0 ? max_var : 1.0);
  for (int c = 0; c < 2; ++c) {
    for (std::size_t j = 0; j < d; ++j) var_[c][j] += smoothing;
  }
  for (int c = 0; c < 2; ++c) {
    log_prior_[c] = counts[c] == 0
                        ? -1e9
                        : std::log(static_cast<double>(counts[c]) /
                                   static_cast<double>(n));
  }
}

double GaussianNaiveBayes::score(std::span<const double> row) const {
  if (mean_[0].empty() && mean_[1].empty()) return 0.5;
  double logp[2];
  for (int c = 0; c < 2; ++c) {
    double lp = log_prior_[c];
    for (std::size_t j = 0; j < mean_[c].size(); ++j) {
      const double v = cell(row, j);
      const double dv = v - mean_[c][j];
      lp += -0.5 * std::log(2.0 * M_PI * var_[c][j]) -
            dv * dv / (2.0 * var_[c][j]);
    }
    logp[c] = lp;
  }
  return softmax_positive(logp[0], logp[1]);
}

std::string CountingNaiveBayes::name() const {
  switch (kind_) {
    case CountNbKind::kMultinomial: return "NB-M";
    case CountNbKind::kComplement: return "NB-C";
    case CountNbKind::kBernoulli: return "NB-B";
  }
  return "NB";
}

void CountingNaiveBayes::fit(const Dataset& data) {
  const std::size_t d = data.n_cols();
  const std::size_t n = data.n_rows();
  std::size_t counts[2] = {0, 0};
  std::vector<double> feature_sum[2];
  for (int c = 0; c < 2; ++c) {
    feature_sum[c].assign(d, 0.0);
    log_prob_[c].assign(d, 0.0);
    log_neg_[c].assign(d, 0.0);
  }
  if (n == 0) return;

  for (std::size_t i = 0; i < n; ++i) {
    const int c = data.label(i) == 1 ? 1 : 0;
    ++counts[c];
    const auto row = data.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      const double v = cell(row, j);
      if (kind_ == CountNbKind::kBernoulli) {
        feature_sum[c][j] += v > 0.0 ? 1.0 : 0.0;
      } else {
        feature_sum[c][j] += std::max(v, 0.0);  // counts must be non-negative
      }
    }
  }
  for (int c = 0; c < 2; ++c) {
    log_prior_[c] = counts[c] == 0
                        ? -1e9
                        : std::log(static_cast<double>(counts[c]) /
                                   static_cast<double>(n));
  }

  switch (kind_) {
    case CountNbKind::kMultinomial: {
      for (int c = 0; c < 2; ++c) {
        double total = 0.0;
        for (std::size_t j = 0; j < d; ++j) total += feature_sum[c][j];
        const double denom = total + alpha_ * static_cast<double>(d);
        for (std::size_t j = 0; j < d; ++j)
          log_prob_[c][j] = std::log((feature_sum[c][j] + alpha_) / denom);
      }
      break;
    }
    case CountNbKind::kComplement: {
      // Complement NB: class weights from the counts of all *other* classes.
      for (int c = 0; c < 2; ++c) {
        const int other = 1 - c;
        double total = 0.0;
        for (std::size_t j = 0; j < d; ++j) total += feature_sum[other][j];
        const double denom = total + alpha_ * static_cast<double>(d);
        for (std::size_t j = 0; j < d; ++j) {
          // Negated: a high complement likelihood argues *against* class c.
          log_prob_[c][j] = -std::log((feature_sum[other][j] + alpha_) / denom);
        }
      }
      break;
    }
    case CountNbKind::kBernoulli: {
      for (int c = 0; c < 2; ++c) {
        const double denom = static_cast<double>(counts[c]) + 2.0 * alpha_;
        for (std::size_t j = 0; j < d; ++j) {
          const double p = (feature_sum[c][j] + alpha_) / denom;
          log_prob_[c][j] = std::log(p);
          log_neg_[c][j] = std::log(1.0 - p);
        }
      }
      break;
    }
  }
}

double CountingNaiveBayes::score(std::span<const double> row) const {
  if (log_prob_[0].empty() && log_prob_[1].empty()) return 0.5;
  double logp[2];
  for (int c = 0; c < 2; ++c) {
    double lp = log_prior_[c];
    for (std::size_t j = 0; j < log_prob_[c].size(); ++j) {
      const double v = cell(row, j);
      if (kind_ == CountNbKind::kBernoulli) {
        lp += v > 0.0 ? log_prob_[c][j] : log_neg_[c][j];
      } else {
        lp += std::max(v, 0.0) * log_prob_[c][j];
      }
    }
    logp[c] = lp;
  }
  return softmax_positive(logp[0], logp[1]);
}

}  // namespace scrubber::ml
