#pragma once
// Hyperparameter grid search with stratified k-fold cross-validation,
// scored by F_beta (beta = 0.5) — the Appendix C / Table 4 methodology.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ml/metrics.hpp"
#include "ml/pipeline.hpp"
#include "util/rng.hpp"

namespace scrubber::ml {

/// One point of a hyperparameter grid: named numeric parameters.
using ParamPoint = std::map<std::string, double>;

/// Cartesian product of named parameter axes.
[[nodiscard]] std::vector<ParamPoint> param_grid(
    const std::map<std::string, std::vector<double>>& axes);

/// Result of a grid search.
struct GridSearchResult {
  ParamPoint best_params;
  double best_score = -1.0;
  /// Mean CV F_beta=0.5 per evaluated point, in grid order.
  std::vector<std::pair<ParamPoint, double>> all_scores;
};

/// Runs k-fold CV for every grid point. `factory` builds an untrained
/// pipeline from a parameter point; scoring is mean F_beta=0.5 over folds.
[[nodiscard]] GridSearchResult grid_search(
    const Dataset& data, const std::vector<ParamPoint>& grid,
    const std::function<Pipeline(const ParamPoint&)>& factory, std::size_t folds,
    util::Rng& rng);

/// Cross-validated score of a single pipeline configuration.
[[nodiscard]] double cross_val_fbeta(
    const Dataset& data, const std::function<Pipeline()>& factory,
    std::size_t folds, util::Rng& rng, double beta = 0.5);

}  // namespace scrubber::ml
