#include "ml/preprocess.hpp"

#include <cmath>

namespace scrubber::ml {

void Standardizer::fit(const Dataset& data) {
  const std::size_t cols = data.n_cols();
  mean_.assign(cols, 0.0);
  std_.assign(cols, 1.0);
  if (data.n_rows() == 0) return;
  std::vector<std::size_t> counts(cols, 0);
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < cols; ++j) {
      if (is_missing(row[j])) continue;
      mean_[j] += row[j];
      ++counts[j];
    }
  }
  for (std::size_t j = 0; j < cols; ++j) {
    if (counts[j] > 0) mean_[j] /= static_cast<double>(counts[j]);
  }
  std::vector<double> ss(cols, 0.0);
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < cols; ++j) {
      if (is_missing(row[j])) continue;
      const double d = row[j] - mean_[j];
      ss[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < cols; ++j) {
    const double var =
        counts[j] > 1 ? ss[j] / static_cast<double>(counts[j]) : 0.0;
    std_[j] = var > 0.0 ? std::sqrt(var) : 1.0;
  }
}

void Standardizer::apply(std::span<double> row) const {
  for (std::size_t j = 0; j < row.size() && j < mean_.size(); ++j) {
    if (!is_missing(row[j])) row[j] = (row[j] - mean_[j]) / std_[j];
  }
}

void MinMaxNormalizer::fit(const Dataset& data) {
  const std::size_t cols = data.n_cols();
  min_.assign(cols, 0.0);
  range_.assign(cols, 1.0);
  if (data.n_rows() == 0) return;
  std::vector<double> max(cols, 0.0);
  std::vector<bool> seen(cols, false);
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < cols; ++j) {
      if (is_missing(row[j])) continue;
      if (!seen[j]) {
        min_[j] = row[j];
        max[j] = row[j];
        seen[j] = true;
      } else {
        min_[j] = std::min(min_[j], row[j]);
        max[j] = std::max(max[j], row[j]);
      }
    }
  }
  for (std::size_t j = 0; j < cols; ++j) {
    const double r = max[j] - min_[j];
    range_[j] = r > 0.0 ? r : 1.0;
  }
}

void MinMaxNormalizer::apply(std::span<double> row) const {
  for (std::size_t j = 0; j < row.size() && j < min_.size(); ++j) {
    if (!is_missing(row[j])) row[j] = (row[j] - min_[j]) / range_[j];
  }
}

void FeatureReducer::fit(const Dataset& data) {
  dropped_.clear();
  if (data.n_rows() == 0) return;
  for (std::size_t j = 0; j < data.n_cols(); ++j) {
    bool constant = true;
    double first = kMissing;
    bool have_first = false;
    for (std::size_t i = 0; i < data.n_rows(); ++i) {
      const double v = data.at(i, j);
      if (is_missing(v)) continue;
      if (!have_first) {
        first = v;
        have_first = true;
      } else if (v != first) {
        constant = false;
        break;
      }
    }
    if (constant) dropped_.push_back(j);
  }
}

void FeatureReducer::apply(std::span<double> row) const {
  for (const std::size_t j : dropped_) {
    if (j < row.size()) row[j] = 0.0;
  }
}

}  // namespace scrubber::ml
