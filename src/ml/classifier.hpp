#pragma once
// Abstract interfaces of the ML stack: Classifier (fit/score/predict) and
// Transformer (fit/apply), composed into the preprocessing + classifier
// pipelines of Figure 8.

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace scrubber::ml {

/// A binary classifier. Scores are probability-like values in [0, 1];
/// predict() thresholds the score at 0.5.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset (all columns are expected to be numeric by the
  /// time a classifier sees them; encoders run earlier in the pipeline).
  virtual void fit(const Dataset& data) = 0;

  /// Probability-like score for one feature row.
  [[nodiscard]] virtual double score(std::span<const double> row) const = 0;

  /// Hard 0/1 prediction; default thresholds score() at 0.5.
  [[nodiscard]] virtual int predict(std::span<const double> row) const {
    return score(row) >= 0.5 ? 1 : 0;
  }

  /// Scores every row of `data` into `out` (size n_rows). The default
  /// loops score(); tree models override with a compiled batch kernel.
  /// Overrides must stay bit-identical to the per-row score() path.
  virtual void score_batch(const Dataset& data, std::span<double> out) const {
    for (std::size_t i = 0; i < data.n_rows(); ++i) out[i] = score(data.row(i));
  }

  /// Batch prediction over all rows of a dataset (thresholds score_batch
  /// at 0.5, matching predict()).
  [[nodiscard]] std::vector<int> predict_all(const Dataset& data) const {
    std::vector<double> scores(data.n_rows(), 0.0);
    score_batch(data, scores);
    std::vector<int> out;
    out.reserve(scores.size());
    for (const double s : scores) out.push_back(s >= 0.5 ? 1 : 0);
    return out;
  }

  /// Short display name, e.g. "XGB".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Deep copy (untrained state is copied as-is).
  [[nodiscard]] virtual std::unique_ptr<Classifier> clone() const = 0;
};

/// A fitted, stateful feature transformation applied row-wise in place.
class Transformer {
 public:
  virtual ~Transformer() = default;

  /// Learns transformation parameters from training data.
  virtual void fit(const Dataset& data) = 0;

  /// Transforms one row in place. May change row semantics but not width;
  /// width-changing transforms (PCA) implement output_width().
  virtual void apply(std::span<double> row) const = 0;

  /// Output row width given an input width (identity for most transforms).
  [[nodiscard]] virtual std::size_t output_width(std::size_t input_width) const {
    return input_width;
  }

  /// For width-changing transforms: writes the transformed row to `out`
  /// (size output_width()). Default copies `row` then calls apply().
  virtual void transform(std::span<const double> row, std::span<double> out) const {
    std::copy(row.begin(), row.end(), out.begin());
    apply(out);
  }

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<Transformer> clone() const = 0;

  /// Fits on `data` and returns the transformed training dataset. The
  /// default fits then applies; encoders that would leak target statistics
  /// into training rows (WoE) override this with out-of-fold encoding.
  [[nodiscard]] virtual Dataset fit_transform(const Dataset& data) {
    fit(data);
    return apply_to_dataset(data);
  }

  /// Applies the fitted transform to every row of a dataset (handles
  /// width-changing transforms). Virtual so column-strip encoders (WoE)
  /// can batch the whole cell buffer; overrides must stay bit-identical
  /// to the row-loop default.
  [[nodiscard]] virtual Dataset apply_to_dataset(const Dataset& data) const;
};

}  // namespace scrubber::ml
