#include "ml/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace scrubber::ml {

std::string ConfusionMatrix::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "tp=%llu tn=%llu fp=%llu fn=%llu F1=%.3f Fb0.5=%.3f tpr=%.3f fpr=%.3f",
                static_cast<unsigned long long>(tp),
                static_cast<unsigned long long>(tn),
                static_cast<unsigned long long>(fp),
                static_cast<unsigned long long>(fn), f1(), f_beta(0.5), tpr(),
                fpr());
  return buf;
}

ConfusionMatrix evaluate(std::span<const int> truth, std::span<const int> predicted) {
  if (truth.size() != predicted.size())
    throw std::invalid_argument("truth/prediction size mismatch");
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < truth.size(); ++i) cm.add(truth[i], predicted[i]);
  return cm;
}

double roc_auc(std::span<const int> truth, std::span<const double> scores) {
  if (truth.size() != scores.size())
    throw std::invalid_argument("truth/score size mismatch");
  const std::size_t n = truth.size();
  std::size_t positives = 0;
  for (const int y : truth) positives += static_cast<std::size_t>(y == 1);
  const std::size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  // Mann-Whitney U via average ranks (handles ties correctly).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
  double positive_rank_sum = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (truth[order[k]] == 1) positive_rank_sum += rank;
    }
    i = j + 1;
  }
  const double u = positive_rank_sum -
                   static_cast<double>(positives) *
                       (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

std::vector<ThresholdPoint> threshold_sweep(std::span<const int> truth,
                                            std::span<const double> scores,
                                            std::span<const double> thresholds) {
  if (truth.size() != scores.size())
    throw std::invalid_argument("truth/score size mismatch");
  std::vector<ThresholdPoint> out;
  out.reserve(thresholds.size());
  for (const double threshold : thresholds) {
    ThresholdPoint point;
    point.threshold = threshold;
    for (std::size_t i = 0; i < truth.size(); ++i)
      point.cm.add(truth[i], scores[i] >= threshold ? 1 : 0);
    out.push_back(point);
  }
  return out;
}

double best_fbeta_threshold(std::span<const int> truth,
                            std::span<const double> scores,
                            std::span<const double> thresholds, double beta) {
  double best_threshold = 0.5;
  double best_score = -1.0;
  for (const auto& point : threshold_sweep(truth, scores, thresholds)) {
    const double score = point.cm.f_beta(beta);
    if (score > best_score) {
      best_score = score;
      best_threshold = point.threshold;
    }
  }
  return best_threshold;
}

}  // namespace scrubber::ml
