#include "ml/pipeline.hpp"

#include <array>
#include <stdexcept>

#include "ml/decision_tree.hpp"
#include "ml/dummy.hpp"
#include "ml/gbt.hpp"
#include "ml/linear.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/neural_net.hpp"
#include "ml/pca.hpp"
#include "ml/preprocess.hpp"
#include "ml/woe.hpp"

namespace scrubber::ml {

Dataset Transformer::apply_to_dataset(const Dataset& data) const {
  const std::size_t in_width = data.n_cols();
  const std::size_t out_width = output_width(in_width);
  if (out_width == in_width) {
    Dataset out = data;
    for (std::size_t i = 0; i < out.n_rows(); ++i) apply(out.row(i));
    return out;
  }
  std::vector<ColumnInfo> columns(out_width);
  for (std::size_t j = 0; j < out_width; ++j) {
    columns[j] = ColumnInfo{name() + std::to_string(j), ColumnKind::kNumeric};
  }
  Dataset out(std::move(columns));
  std::vector<double> buffer(out_width);
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    transform(data.row(i), buffer);
    out.add_row(buffer, data.label(i));
  }
  return out;
}

void Pipeline::fit(const Dataset& data) {
  if (!classifier_) throw std::logic_error("pipeline has no classifier");
  Dataset work = data;
  for (auto& stage : stages_) {
    work = stage->fit_transform(work);
  }
  classifier_->fit(work);
}

std::vector<double> Pipeline::transform(std::span<const double> row) const {
  std::vector<double> current(row.begin(), row.end());
  std::vector<double> next;
  for (const auto& stage : stages_) {
    const std::size_t out_width = stage->output_width(current.size());
    if (out_width == current.size()) {
      stage->apply(current);
    } else {
      next.assign(out_width, 0.0);
      stage->transform(current, next);
      current.swap(next);
    }
  }
  return current;
}

double Pipeline::score(std::span<const double> row) const {
  if (!classifier_) throw std::logic_error("pipeline has no classifier");
  const std::vector<double> features = transform(row);
  return classifier_->score(features);
}

std::vector<double> Pipeline::score_all(const Dataset& data) const {
  if (!classifier_) throw std::logic_error("pipeline has no classifier");
  const Dataset transformed = transform_dataset(data);
  std::vector<double> out(transformed.n_rows(), 0.0);
  classifier_->score_batch(transformed, out);
  return out;
}

std::vector<int> Pipeline::predict_all(const Dataset& data) const {
  const std::vector<double> scores = score_all(data);
  std::vector<int> out;
  out.reserve(scores.size());
  for (const double s : scores) out.push_back(s >= 0.5 ? 1 : 0);
  return out;
}

Dataset Pipeline::transform_dataset(const Dataset& data) const {
  Dataset work = data;
  for (const auto& stage : stages_) work = stage->apply_to_dataset(work);
  return work;
}

Transformer* Pipeline::find_stage(std::string_view name) {
  for (auto& stage : stages_) {
    if (stage->name() == name) return stage.get();
  }
  return nullptr;
}

const Transformer* Pipeline::find_stage(std::string_view name) const {
  for (const auto& stage : stages_) {
    if (stage->name() == name) return stage.get();
  }
  return nullptr;
}

Pipeline Pipeline::clone() const {
  Pipeline out;
  for (const auto& stage : stages_) out.add(stage->clone());
  if (classifier_) out.set_classifier(classifier_->clone());
  return out;
}

std::string Pipeline::describe() const {
  std::string out;
  for (const auto& stage : stages_) {
    out += stage->name();
    out += "->";
  }
  out += "C(";
  out += classifier_ ? classifier_->name() : "none";
  out += ")";
  return out;
}

std::string_view model_kind_name(ModelKind kind) noexcept {
  switch (kind) {
    case ModelKind::kXgb: return "XGB";
    case ModelKind::kDecisionTree: return "DT";
    case ModelKind::kNeuralNet: return "NN";
    case ModelKind::kLinearSvm: return "LSVM";
    case ModelKind::kNaiveBayesGaussian: return "NB-G";
    case ModelKind::kNaiveBayesMultinomial: return "NB-M";
    case ModelKind::kNaiveBayesComplement: return "NB-C";
    case ModelKind::kNaiveBayesBernoulli: return "NB-B";
    case ModelKind::kDummy: return "DUM";
  }
  return "?";
}

Pipeline make_model_pipeline(ModelKind kind, std::size_t pca_components) {
  Pipeline p;
  if (kind == ModelKind::kDummy) {
    p.set_classifier(std::make_unique<DummyClassifier>());
    return p;
  }
  p.add(std::make_unique<FeatureReducer>());
  p.add(std::make_unique<Imputer>(-1.0));
  p.add(std::make_unique<WoeEncoder>());
  switch (kind) {
    case ModelKind::kXgb:
      p.set_classifier(std::make_unique<GradientBoostedTrees>());
      break;
    case ModelKind::kDecisionTree: {
      DecisionTreeParams params;
      params.max_depth = 24;
      params.min_samples_leaf = 1;
      params.min_samples_split = 2;
      params.min_impurity_decrease = 1e-5;
      p.set_classifier(std::make_unique<DecisionTree>(params));
      break;
    }
    case ModelKind::kNeuralNet:
      p.add(std::make_unique<Standardizer>());
      p.add(std::make_unique<Pca>(pca_components));
      p.add(std::make_unique<MinMaxNormalizer>());
      p.set_classifier(std::make_unique<NeuralNet>());
      break;
    case ModelKind::kLinearSvm:
      p.add(std::make_unique<Standardizer>());
      p.add(std::make_unique<MinMaxNormalizer>());
      p.set_classifier(std::make_unique<LinearSvm>());
      break;
    case ModelKind::kNaiveBayesGaussian:
      p.add(std::make_unique<MinMaxNormalizer>());
      p.set_classifier(std::make_unique<GaussianNaiveBayes>(1e-9));
      break;
    case ModelKind::kNaiveBayesMultinomial:
      p.add(std::make_unique<MinMaxNormalizer>());
      p.set_classifier(
          std::make_unique<CountingNaiveBayes>(CountNbKind::kMultinomial));
      break;
    case ModelKind::kNaiveBayesComplement:
      p.add(std::make_unique<MinMaxNormalizer>());
      p.set_classifier(
          std::make_unique<CountingNaiveBayes>(CountNbKind::kComplement));
      break;
    case ModelKind::kNaiveBayesBernoulli:
      p.add(std::make_unique<Standardizer>());
      p.set_classifier(
          std::make_unique<CountingNaiveBayes>(CountNbKind::kBernoulli));
      break;
    case ModelKind::kDummy:
      break;  // handled above
  }
  return p;
}

std::span<const ModelKind> all_model_kinds() noexcept {
  static constexpr std::array<ModelKind, 9> kAll{
      ModelKind::kXgb,
      ModelKind::kNeuralNet,
      ModelKind::kLinearSvm,
      ModelKind::kNaiveBayesGaussian,
      ModelKind::kDecisionTree,
      ModelKind::kNaiveBayesComplement,
      ModelKind::kNaiveBayesMultinomial,
      ModelKind::kNaiveBayesBernoulli,
      ModelKind::kDummy,
  };
  return kAll;
}

}  // namespace scrubber::ml
