#pragma once
// Dense dataset container for the ML stack: a row-major matrix of doubles
// with named, typed columns (numeric vs. categorical) and binary labels.
//
// Categorical values (IPs, ports, member MACs) are stored as their exact
// integer value cast to double; the Weight-of-Evidence encoder replaces
// them with real-valued scores before classification. Missing values are
// quiet NaNs (replaced by the Imputer stage, mirroring Figure 8's "I").

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace scrubber::ml {

/// Missing-value sentinel used throughout the ML stack.
inline constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();

/// True when a cell holds the missing sentinel.
[[nodiscard]] inline bool is_missing(double v) noexcept { return std::isnan(v); }

/// Column type: numeric columns feed models directly; categorical columns
/// must be encoded (WoE) first.
enum class ColumnKind : std::uint8_t { kNumeric, kCategorical };

/// Column metadata.
struct ColumnInfo {
  std::string name;
  ColumnKind kind = ColumnKind::kNumeric;

  friend bool operator==(const ColumnInfo&, const ColumnInfo&) = default;
};

/// A labeled dataset with a fixed column schema.
class Dataset {
 public:
  Dataset() = default;

  /// Constructs an empty dataset with the given schema.
  explicit Dataset(std::vector<ColumnInfo> columns) : columns_(std::move(columns)) {}

  [[nodiscard]] std::size_t n_rows() const noexcept { return labels_.size(); }
  [[nodiscard]] std::size_t n_cols() const noexcept { return columns_.size(); }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }

  [[nodiscard]] const std::vector<ColumnInfo>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] const ColumnInfo& column(std::size_t j) const {
    return columns_.at(j);
  }

  /// Index of the column with the given name; throws std::out_of_range.
  [[nodiscard]] std::size_t column_index(std::string_view name) const;

  /// Appends a row; `values.size()` must equal n_cols().
  void add_row(std::span<const double> values, int label);

  /// Pre-sizes storage for `rows` total rows (producers that know their
  /// row count up front avoid the geometric-growth copies of add_row).
  void reserve_rows(std::size_t rows) {
    data_.reserve(rows * n_cols());
    labels_.reserve(rows);
  }

  /// Read-only view of row i.
  [[nodiscard]] std::span<const double> row(std::size_t i) const noexcept {
    return {data_.data() + i * n_cols(), n_cols()};
  }

  /// Mutable view of row i (used by in-place transformers).
  [[nodiscard]] std::span<double> row(std::size_t i) noexcept {
    return {data_.data() + i * n_cols(), n_cols()};
  }

  [[nodiscard]] double at(std::size_t i, std::size_t j) const noexcept {
    return data_[i * n_cols() + j];
  }
  double& at(std::size_t i, std::size_t j) noexcept {
    return data_[i * n_cols() + j];
  }

  [[nodiscard]] int label(std::size_t i) const noexcept { return labels_[i]; }
  [[nodiscard]] const std::vector<int>& labels() const noexcept { return labels_; }

  /// Count of rows labeled 1.
  [[nodiscard]] std::size_t positive_count() const noexcept;

  /// Copies the selected rows (in order) into a new dataset.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Copies the selected columns (in order) into a new dataset.
  [[nodiscard]] Dataset select_columns(std::span<const std::size_t> column_indices) const;

  /// Shuffled train/test split; returns {train_indices, test_indices} with
  /// `train_fraction` of rows in train. Deterministic for a given rng.
  [[nodiscard]] std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
  split_indices(double train_fraction, util::Rng& rng) const;

  /// Stratified k-fold indices: fold f contains every row whose shuffled
  /// within-class position is congruent to f (preserves class balance).
  [[nodiscard]] std::vector<std::vector<std::size_t>> stratified_folds(
      std::size_t k, util::Rng& rng) const;

  /// Concatenates another dataset with an identical schema.
  void append(const Dataset& other);

  /// Replaces all labels (same size required).
  void set_labels(std::vector<int> labels);

  /// Direct access to the underlying row-major buffer (for PCA/BLAS-ish code).
  [[nodiscard]] const std::vector<double>& raw() const noexcept { return data_; }

  /// Mutable view of the whole row-major cell buffer (column-strip
  /// transformers, e.g. WoeEncoder::encode_rows).
  [[nodiscard]] std::span<double> cells() noexcept {
    return {data_.data(), data_.size()};
  }

  /// Row-major cell view padded to a multiple of `lane` rows (zero-filled
  /// padding rows), so SIMD batch kernels can run full lane groups over
  /// the ragged tail. Returns raw() directly when no padding is needed;
  /// otherwise copies into `storage` and views that. The padding rows are
  /// read but never scored — out.size() still bounds the live rows.
  [[nodiscard]] std::span<const double> raw_padded(
      std::size_t lane, std::vector<double>& storage) const;

 private:
  std::vector<ColumnInfo> columns_;
  std::vector<double> data_;  // row-major, n_rows * n_cols
  std::vector<int> labels_;
};

}  // namespace scrubber::ml
