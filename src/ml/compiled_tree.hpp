#pragma once
// Compiled (flattened) form of the tree models for batch inference.
//
// Training-side trees (DecisionTree::Node, GradientBoostedTrees::Node)
// carry bookkeeping (sample counts, impurity) and live wherever the
// builder left them, including nodes orphaned by ccp pruning. Compilation
// re-lays the reachable nodes out breadth-first in one contiguous array —
// a level's nodes are adjacent, children sit left-to-right after their
// parents — so batch traversal walks a dense, prefetch-friendly table
// instead of chasing scattered indices.
//
// Alongside the array-of-structs node table, compilation also builds an
// SoA "lane table" (detail::LaneTable): separate contiguous arrays for
// thresholds, feature indices, child links and leaf payloads, with leaves
// rewritten to self-loops so every root-to-leaf path reads as exactly
// `depth` steps. That is the layout the AVX2 kernels in
// compiled_tree_avx2.cpp descend in masked lockstep, 4 rows per vector
// (DESIGN.md §13). Dispatch is per batch via util::simd_level(); the
// scalar lockstep path below is kept verbatim as the bit-identity oracle.
//
// Semantics contract (tests/ml/compiled_tree_test.cpp,
// tests/ml/simd_inference_test.cpp): predict() and predict_batch() are
// BIT-IDENTICAL to the training-side scalar score() for every input —
// whichever kernel runs — including NaN (missing) cells, feature indices
// beyond the row width, and values exactly on a threshold. The traversal
// rule is copied verbatim: a missing or out-of-range feature reads as a
// per-model surrogate value (-1.0 historically; -inf for GBT models
// trained with the reserved missing bin, GbtParams::missing_surrogate),
// and `v <= threshold` goes left.

#include <cstdint>
#include <span>
#include <vector>

namespace scrubber::ml {

/// One node of a compiled tree. 32 bytes, hot fields first.
struct CompiledNode {
  double threshold = 0.0;   ///< split point (internal nodes)
  double value = 0.0;       ///< leaf payload (DT: probability, GBT: weight)
  std::int32_t left = -1;   ///< child for v <= threshold; -1 = leaf
  std::int32_t right = -1;  ///< child for v > threshold
  std::uint32_t feature = 0;

  [[nodiscard]] bool is_leaf() const noexcept { return left < 0; }
};

/// Rows per SIMD lane group (one __m256d of feature values). Callers that
/// assemble batches padded to a multiple of this row count (zero-filled
/// padding rows, Dataset::raw_padded) let the vector kernel cover the
/// ragged tail too; unpadded batches fall back to the scalar oracle for
/// the last `n % kSimdLaneRows` rows — identical bits either way.
inline constexpr std::size_t kSimdLaneRows = 4;

namespace detail {

/// Appends the BFS re-layout of `nodes` (rooted at index 0) to `out`,
/// dropping unreachable nodes. Child links are absolute indices into
/// `out`, so concatenated trees traverse without per-tree bases.
template <typename Node>
void flatten_bfs(const std::vector<Node>& nodes,
                 std::vector<CompiledNode>& out) {
  if (nodes.empty()) return;
  const std::size_t base = out.size();
  std::vector<std::size_t> order{0};  // BFS order of original indices
  for (std::size_t head = 0; head < order.size(); ++head) {
    const Node& src = nodes[order[head]];
    CompiledNode node;
    node.threshold = src.threshold;
    node.value = src.value;
    node.feature = src.feature;
    if (src.left >= 0) {
      node.left = static_cast<std::int32_t>(base + order.size());
      order.push_back(static_cast<std::size_t>(src.left));
      node.right = static_cast<std::int32_t>(base + order.size());
      order.push_back(static_cast<std::size_t>(src.right));
    }
    out.push_back(node);
  }
}

/// SoA mirror of the BFS node table, laid out for masked lockstep descent
/// (DESIGN.md §13). Entry i describes the same node as the AoS table's
/// index i, so cursors gather by absolute node index:
///
///   * internal nodes copy {threshold, feature, left, right} verbatim
///     (feature bit-cast to int32 — the kernel compares it unsigned,
///     matching the scalar `feature < width` rule);
///   * leaves become self-loops (left = right = own index), the virtual
///     form of padding every level: stepping a leaf lane is a no-op, so
///     all lanes can descend exactly `depth[tree]` times with no active
///     mask and land on the same leaf the scalar walk reaches.
struct LaneTable {
  std::vector<double> threshold;
  std::vector<double> value;
  std::vector<std::int32_t> feature;
  std::vector<std::int32_t> left;
  std::vector<std::int32_t> right;
  std::vector<std::int32_t> root;   ///< per tree: absolute root index
  std::vector<std::int32_t> depth;  ///< per tree: lockstep descent steps
  double missing = -1.0;            ///< surrogate for missing/out-of-range

  [[nodiscard]] bool empty() const noexcept { return value.empty(); }
};

/// Appends the lane form of the BFS-flattened tree occupying
/// nodes[root, root + count) to `out` (lane index == node index, so the
/// caller must append trees in table order with no gaps).
void append_lane_tree(const std::vector<CompiledNode>& nodes,
                      std::uint32_t root, std::size_t count, LaneTable& out);

// AVX2 lane-table kernels (compiled_tree_avx2.cpp; stubs when the build
// disables SCRUBBER_AVX2 — util::simd_level() then never selects them).
// Both traverse rows [0, n_pad) in kSimdLaneRows-lane groups and write
// out[0, n_live), n_pad a multiple of kSimdLaneRows with either
// n_pad == n_live (caller handles the tail) or n_pad = ceil(n_live)
// (caller supplied padded rows); `rows` must hold n_pad readable rows.

/// Adds each tree's reached leaf value to out[i] (caller pre-fills the
/// base margin), trees in table order — the scalar accumulation order.
void avx2_forest_margin(const LaneTable& table, const double* rows,
                        std::size_t width, std::size_t n_live,
                        std::size_t n_pad, double* out) noexcept;

/// Writes the single tree's reached leaf value to out[i].
void avx2_tree_predict(const LaneTable& table, const double* rows,
                       std::size_t width, std::size_t n_live,
                       std::size_t n_pad, double* out) noexcept;

}  // namespace detail

/// A single flattened decision tree (compiled DecisionTree).
class CompiledTree {
 public:
  CompiledTree() = default;

  /// Compiles any node array with {left,right,feature,threshold,value}
  /// fields and root at index 0.
  template <typename Node>
  [[nodiscard]] static CompiledTree compile(const std::vector<Node>& nodes) {
    CompiledTree out;
    detail::flatten_bfs(nodes, out.nodes_);
    out.build_lanes();
    return out;
  }

  /// Scalar prediction; identical to DecisionTree::score (empty → 0.5).
  [[nodiscard]] double predict(std::span<const double> row) const noexcept;

  /// Predicts out.size() rows stored contiguously in `rows` (row-major,
  /// `width` doubles each). Bit-identical to per-row predict(). When
  /// `rows` holds at least ceil(out.size() / kSimdLaneRows) full rows
  /// (padded assembly) the AVX2 kernel covers the ragged tail too.
  void predict_batch(std::span<const double> rows, std::size_t width,
                     std::span<double> out) const noexcept;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] const std::vector<CompiledNode>& nodes() const noexcept {
    return nodes_;
  }

 private:
  void build_lanes();

  std::vector<CompiledNode> nodes_;
  detail::LaneTable lanes_;
};

/// A flattened GBT ensemble: every tree BFS-compiled into one shared node
/// array, one root offset per tree.
class CompiledForest {
 public:
  CompiledForest() = default;

  /// `missing` is the surrogate value a missing or out-of-range feature
  /// reads as during traversal (GbtParams::missing_surrogate).
  template <typename Tree>
  [[nodiscard]] static CompiledForest compile(const std::vector<Tree>& trees,
                                              double base_margin,
                                              double missing = -1.0) {
    CompiledForest out;
    out.base_margin_ = base_margin;
    out.missing_ = missing;
    out.roots_.reserve(trees.size());
    for (const Tree& tree : trees) {
      out.roots_.push_back(static_cast<std::uint32_t>(out.nodes_.size()));
      detail::flatten_bfs(tree, out.nodes_);
    }
    out.build_lanes();
    return out;
  }

  /// Raw additive margin; identical to GradientBoostedTrees::margin.
  [[nodiscard]] double margin(std::span<const double> row) const noexcept;

  /// Sigmoid of margin; identical to GradientBoostedTrees::score.
  [[nodiscard]] double score(std::span<const double> row) const noexcept;

  /// Margins for out.size() contiguous rows. Trees are walked tree-major
  /// (all rows through tree t before tree t+1) so a tree's node table
  /// stays cache-resident; per-row accumulation order still matches the
  /// scalar path (base margin, then trees in order) — bit-identical,
  /// whichever kernel util::simd_level() selects.
  void margin_batch(std::span<const double> rows, std::size_t width,
                    std::span<double> out) const noexcept;

  /// Scores (sigmoid of margin) for out.size() contiguous rows.
  void score_batch(std::span<const double> rows, std::size_t width,
                   std::span<double> out) const noexcept;

  [[nodiscard]] std::size_t tree_count() const noexcept { return roots_.size(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] double base_margin() const noexcept { return base_margin_; }
  [[nodiscard]] double missing_surrogate() const noexcept { return missing_; }

 private:
  void build_lanes();

  std::vector<CompiledNode> nodes_;
  std::vector<std::uint32_t> roots_;
  detail::LaneTable lanes_;
  double base_margin_ = 0.0;
  double missing_ = -1.0;
};

}  // namespace scrubber::ml
