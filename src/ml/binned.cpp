#include "ml/binned.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace scrubber::ml {
namespace {

/// Builds one column's ascending edge list from its distinct mapped
/// values (`distinct`, sorted+uniqued in `scratch`). `budget` is the
/// maximum bin count this column may use (max_bins, minus the reserved
/// missing bin under kReservedBin).
void build_edges(const std::vector<double>& distinct, std::size_t budget,
                 std::vector<double>& edges) {
  if (distinct.size() <= budget) {
    // One bin per distinct value; edges are midpoints.
    for (std::size_t k = 0; k + 1 < distinct.size(); ++k) {
      edges.push_back((distinct[k] + distinct[k + 1]) / 2.0);
    }
  } else {
    for (std::size_t b = 1; b < budget; ++b) {
      const std::size_t idx = b * distinct.size() / budget;
      const double edge = distinct[idx];
      if (edges.empty() || edge > edges.back()) edges.push_back(edge);
    }
  }
}

}  // namespace

// scrubber-deterministic-begin
BinnedMatrix::BinnedMatrix(const Dataset& data, std::size_t max_bins,
                           MissingPolicy policy) {
  rows_ = data.n_rows();
  cols_ = data.n_cols();
  max_bins_ = max_bins;
  policy_ = policy;
  edges_.resize(cols_);

  const bool reserved = policy == MissingPolicy::kReservedBin;
  const double missing_value = missing_mapped_value(policy);
  util::ThreadPool& pool = util::training_pool();

  // Phase 1: per-column edges. One sort scratch per chunk, reused across
  // its columns — no per-column `values` + `sorted` duplicate buffers.
  pool.parallel_for_chunks(
      cols_, [&](std::size_t, std::size_t col_begin, std::size_t col_end) {
        std::vector<double> scratch;
        scratch.reserve(rows_);
        for (std::size_t j = col_begin; j < col_end; ++j) {
          scratch.clear();
          for (std::size_t i = 0; i < rows_; ++i) {
            const double v = data.at(i, j);
            if (is_missing(v)) {
              // Reserved policy keeps missing out of the edge estimate
              // entirely; legacy folds it into the -1.0 value population.
              if (!reserved) scratch.push_back(-1.0);
            } else {
              scratch.push_back(v);
            }
          }
          std::sort(scratch.begin(), scratch.end());
          scratch.erase(std::unique(scratch.begin(), scratch.end()),
                        scratch.end());

          auto& edges = edges_[j];
          if (reserved) edges.push_back(kReservedMissingEdge);
          build_edges(scratch, reserved ? max_bins - 1 : max_bins, edges);
        }
      });

  // Phase 2: pick the code width from the widest column, then assign
  // codes. The split keeps the decision data-driven (a u16 fallback only
  // when some column genuinely exceeds 256 bins) instead of keying on the
  // max_bins request.
  std::size_t widest = 0;
  for (std::size_t j = 0; j < cols_; ++j) {
    widest = std::max(widest, bin_count(j));
  }
  if (widest <= 256) {
    codes8_.resize(rows_ * cols_);
  } else {
    codes16_.resize(rows_ * cols_);
  }

  pool.parallel_for_chunks(
      cols_, [&](std::size_t, std::size_t col_begin, std::size_t col_end) {
        for (std::size_t j = col_begin; j < col_end; ++j) {
          const auto& edges = edges_[j];
          const double* edge_data = edges.data();
          const auto n_edges = static_cast<std::uint32_t>(edges.size());
          if (narrow()) {
            std::uint8_t* out = codes8_.data() + j * rows_;
            for (std::size_t i = 0; i < rows_; ++i) {
              const double v = data.at(i, j);
              out[i] = static_cast<std::uint8_t>(branchless_bin(
                  edge_data, n_edges, is_missing(v) ? missing_value : v));
            }
          } else {
            std::uint16_t* out = codes16_.data() + j * rows_;
            for (std::size_t i = 0; i < rows_; ++i) {
              const double v = data.at(i, j);
              out[i] = static_cast<std::uint16_t>(branchless_bin(
                  edge_data, n_edges, is_missing(v) ? missing_value : v));
            }
          }
        }
      });
}
// scrubber-deterministic-end

}  // namespace scrubber::ml
