#include "ml/grid_search.hpp"

#include "util/thread_pool.hpp"

namespace scrubber::ml {

std::vector<ParamPoint> param_grid(
    const std::map<std::string, std::vector<double>>& axes) {
  std::vector<ParamPoint> grid{{}};
  for (const auto& [name, values] : axes) {
    std::vector<ParamPoint> next;
    next.reserve(grid.size() * values.size());
    for (const auto& point : grid) {
      for (const double v : values) {
        ParamPoint extended = point;
        extended[name] = v;
        next.push_back(std::move(extended));
      }
    }
    grid = std::move(next);
  }
  return grid;
}

namespace {

using FoldIndices = std::vector<std::vector<std::size_t>>;

/// F_beta of one {configuration, fold} cell: train on every other fold,
/// test on fold `f`. Pure given the fold assignment and factory, so
/// cells evaluate concurrently; `factory` must be safe to call from
/// multiple threads (the bench/test factories are stateless builders).
double fold_fbeta(const Dataset& data, const FoldIndices& fold_indices,
                  std::size_t f, const std::function<Pipeline()>& factory,
                  double beta) {
  std::vector<std::size_t> train_idx;
  for (std::size_t g = 0; g < fold_indices.size(); ++g) {
    if (g == f) continue;
    train_idx.insert(train_idx.end(), fold_indices[g].begin(),
                     fold_indices[g].end());
  }
  const Dataset train = data.subset(train_idx);
  const Dataset test = data.subset(fold_indices[f]);
  Pipeline pipeline = factory();
  pipeline.fit(train);
  const std::vector<int> predicted = pipeline.predict_all(test);
  return evaluate(test.labels(), predicted).f_beta(beta);
}

/// Mean F_beta over precomputed folds, cells fanned out over the
/// training pool. Per-fold scores land in per-cell slots and sum in
/// ascending fold order — the same float stream as a sequential loop,
/// so the mean is bit-identical for any thread count.
double score_folds(const Dataset& data, const FoldIndices& fold_indices,
                   const std::function<Pipeline()>& factory, double beta) {
  const std::size_t folds = fold_indices.size();
  std::vector<double> fold_score(folds, 0.0);
  util::training_pool().parallel_for(folds, [&](std::size_t f) {
    fold_score[f] = fold_fbeta(data, fold_indices, f, factory, beta);
  });
  double total = 0.0;
  for (const double score : fold_score) total += score;
  return total / static_cast<double>(folds);
}

}  // namespace

double cross_val_fbeta(const Dataset& data,
                       const std::function<Pipeline()>& factory,
                       std::size_t folds, util::Rng& rng, double beta) {
  return score_folds(data, data.stratified_folds(folds, rng), factory, beta);
}

GridSearchResult grid_search(
    const Dataset& data, const std::vector<ParamPoint>& grid,
    const std::function<Pipeline(const ParamPoint&)>& factory, std::size_t folds,
    util::Rng& rng) {
  // One fold assignment shared by every grid point: a paired comparison
  // (each configuration sees the same train/test partitions, so score
  // differences are attributable to the parameters, not fold luck), and
  // every cell's fit re-encodes the same training folds — the BinCache
  // (ml/bin_cache.hpp) then bins each fold once and every subsequent
  // configuration hits. The single draw consumes the RNG once, in grid
  // order, before any cell runs; cells then train concurrently.
  const FoldIndices fold_indices = data.stratified_folds(folds, rng);

  const std::size_t cells = grid.size() * folds;
  std::vector<double> cell_score(cells, 0.0);
  util::training_pool().parallel_for(cells, [&](std::size_t c) {
    const std::size_t g = c / folds;
    const std::size_t f = c % folds;
    cell_score[c] = fold_fbeta(
        data, fold_indices, f, [&] { return factory(grid[g]); }, 0.5);
  });

  // Reduce in grid order: per-point means sum folds ascending and the
  // winner comparison scans points ascending with strict `>` — identical
  // to the sequential search for any thread count.
  GridSearchResult result;
  result.all_scores.reserve(grid.size());
  for (std::size_t g = 0; g < grid.size(); ++g) {
    double total = 0.0;
    for (std::size_t f = 0; f < folds; ++f) total += cell_score[g * folds + f];
    const double score = total / static_cast<double>(folds);
    result.all_scores.emplace_back(grid[g], score);
    if (score > result.best_score) {
      result.best_score = score;
      result.best_params = grid[g];
    }
  }
  return result;
}

}  // namespace scrubber::ml
