#include "ml/grid_search.hpp"

namespace scrubber::ml {

std::vector<ParamPoint> param_grid(
    const std::map<std::string, std::vector<double>>& axes) {
  std::vector<ParamPoint> grid{{}};
  for (const auto& [name, values] : axes) {
    std::vector<ParamPoint> next;
    next.reserve(grid.size() * values.size());
    for (const auto& point : grid) {
      for (const double v : values) {
        ParamPoint extended = point;
        extended[name] = v;
        next.push_back(std::move(extended));
      }
    }
    grid = std::move(next);
  }
  return grid;
}

namespace {

/// Mean F_beta over stratified folds for one pipeline factory.
double score_folds(const Dataset& data,
                   const std::function<Pipeline()>& factory, std::size_t folds,
                   util::Rng& rng, double beta) {
  const auto fold_indices = data.stratified_folds(folds, rng);
  double total = 0.0;
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<std::size_t> train_idx;
    for (std::size_t g = 0; g < folds; ++g) {
      if (g == f) continue;
      train_idx.insert(train_idx.end(), fold_indices[g].begin(),
                       fold_indices[g].end());
    }
    const Dataset train = data.subset(train_idx);
    const Dataset test = data.subset(fold_indices[f]);
    Pipeline pipeline = factory();
    pipeline.fit(train);
    const std::vector<int> predicted = pipeline.predict_all(test);
    total += evaluate(test.labels(), predicted).f_beta(beta);
  }
  return total / static_cast<double>(folds);
}

}  // namespace

double cross_val_fbeta(const Dataset& data,
                       const std::function<Pipeline()>& factory,
                       std::size_t folds, util::Rng& rng, double beta) {
  return score_folds(data, factory, folds, rng, beta);
}

GridSearchResult grid_search(
    const Dataset& data, const std::vector<ParamPoint>& grid,
    const std::function<Pipeline(const ParamPoint&)>& factory, std::size_t folds,
    util::Rng& rng) {
  GridSearchResult result;
  result.all_scores.reserve(grid.size());
  for (const auto& point : grid) {
    const double score = score_folds(
        data, [&] { return factory(point); }, folds, rng, 0.5);
    result.all_scores.emplace_back(point, score);
    if (score > result.best_score) {
      result.best_score = score;
      result.best_params = point;
    }
  }
  return result;
}

}  // namespace scrubber::ml
