#include "ml/gbt.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "ml/bin_cache.hpp"
#include "ml/binned.hpp"
#include "util/thread_pool.hpp"

namespace scrubber::ml {
namespace {

/// Power-of-two upper bound on 1/d for finite d >= 1: with e the biased
/// exponent of d, d >= 2^(e-1023), so 2^(1023-e) >= 1/d. The bound is
/// within 2x of the true reciprocal at a few integer ops and no divide;
/// the clamp keeps the result a normal float for astronomically large d
/// (still an upper bound on 1/d, which is all soundness needs).
[[nodiscard]] inline double recip_upper(double d) noexcept {
  const std::uint64_t e = (std::bit_cast<std::uint64_t>(d) >> 52) & 0x7FF;
  return std::bit_cast<double>((2046 - std::min<std::uint64_t>(e, 2045))
                               << 52);
}

[[nodiscard]] double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

struct SplitChoice {
  double gain = 0.0;
  std::size_t feature = 0;
  std::size_t bin = 0;  // split: bin <= this goes left
  bool valid = false;
};

/// Contiguous slice of the active row-index buffer holding one open
/// node's rows, ascending by global row index.
struct NodeSpan {
  std::uint32_t begin = 0;
  std::uint32_t count = 0;
};

/// Histogram + split scan for the features in [f_begin, f_end), reading
/// only the open nodes' row spans. Templated on the bin-code width so the
/// inner loop loads u8 codes when the matrix is narrow.
///
/// Bit-identity invariants vs the historical all-rows engine
/// (bench/gbt_oracle.hpp):
///
///   * Per-(node, bin) accumulation order: a span's rows are ascending by
///     global row index — stable partition of an ascending parent — so
///     each accumulator sees the exact float stream of the historical
///     global scan restricted to that node. Processing one node at a time
///     in a single-node histogram is bitwise irrelevant: accumulators of
///     different nodes are disjoint.
///   * Candidate visit order: slots ascending, bins ascending, features
///     ascending within the chunk — the historical order — with strict
///     `>` keeping the earliest maximum.
///   * Touched-range truncation: the gain scan covers only [lo, hi], the
///     bins this node actually populated. Untouched interior bins hold
///     exact +0.0 pairs (adding them changes no bits and their candidate
///     gain duplicates the preceding touched candidate, which strict `>`
///     already keeps). Prefix candidates (all-left mass zero) evaluate to
///     exactly -gamma, never beating the 0.0 init while gamma >= 0.
///     Suffix candidates have hr within rounding of zero, which
///     min_child_weight > 0 rejects. Exotic params (gamma < 0 or
///     min_child_weight == 0) fall back to the full range.
///
/// The single-node histogram replaces the historical `open * bins` zero
/// fill per feature with a touched-range re-zero per node. Features are
/// processed in blocks of up to four so one pass over a node's rows
/// amortizes the row-index and (g,h) loads across four histograms, and
/// the `__restrict` pointers let the compiler fuse each interleaved
/// (g,h) cell update into a single 128-bit pair add — two independent
/// IEEE doubles adds, bitwise the scalar pair.
constexpr std::size_t kFeatureBlock = 4;

template <typename Code>
void scan_features(const BinnedMatrix& binned, std::size_t f_begin,
                   std::size_t f_end, const std::uint32_t* row_index,
                   const std::vector<NodeSpan>& spans, const double* gh,
                   const std::vector<double>& node_g,
                   const std::vector<double>& node_h, const GbtParams& params,
                   std::vector<double>& hist,
                   std::vector<SplitChoice>& local_best) {
  const std::size_t open = spans.size();
  std::size_t widest = 0;
  for (std::size_t feature = f_begin; feature < f_end; ++feature) {
    widest = std::max(widest, binned.bin_count(feature));
  }
  // One single-node histogram slice per block lane, all-zero between
  // nodes: each node re-zeroes only the ranges it touched, so the buffer
  // is all-zero again on exit and the full-width fill runs once per
  // chunk per fit (the chunk partition — and hence `widest` — is fixed).
  if (hist.size() != kFeatureBlock * widest * 2) {
    hist.assign(kFeatureBlock * widest * 2, 0.0);
  }
  const bool can_truncate =
      params.gamma >= 0.0 && params.min_child_weight > 0.0;
  const double* __restrict gh_pairs = gh;
  const double min_cw = params.min_child_weight;
  const double lambda = params.reg_lambda;
  const double gamma = params.gamma;
  // Division-free pre-filter: with lambda >= 1 and hr >= 0 every divisor
  // d = h + lambda is >= 1, and recip_upper(d) >= 1/d over the reals —
  // so replacing each quotient x/d by x * recip_upper(d) can only raise
  // the result. Every float operation in the gain expression is monotone
  // in its operands (rounding is monotone), so the bound dominates the
  // computed gain too, not just the real one. A candidate whose bound
  // fails `> best` can therefore never win; survivors compute the exact
  // historical gain, so the selected split is bit-identical.
  const bool can_filter = lambda >= 1.0;
  // A node needs hl >= min_cw AND hr >= min_cw for any candidate on any
  // feature, and hl + hr reconstructs h_total to within rounding — so a
  // node whose hessian total sits below ~2*min_cw can never split and
  // skips its histograms outright (the oracle reaches the same "no valid
  // candidate" conclusion the slow way). The epsilon margin keeps the
  // half-ulp boundary case, where fl(h_total - hl) could still round up
  // to min_cw, on the scanning path.
  const double h_floor =
      2.0 * min_cw * (1.0 - 4.0 * std::numeric_limits<double>::epsilon());
  // One divide per node, reused across every feature (the quotient is the
  // same bits the historical per-feature recomputation produced).
  std::vector<double> node_parent(open);
  for (std::size_t s = 0; s < open; ++s) {
    node_parent[s] = node_g[s] * node_g[s] / (node_h[s] + lambda);
  }

  std::size_t feats[kFeatureBlock];
  const Code* codes[kFeatureBlock];
  std::size_t nbins[kFeatureBlock];
  for (std::size_t next = f_begin; next < f_end;) {
    // Fill the block with the next (up to) four features wide enough to
    // split; single-bin columns have no candidates and skip entirely.
    std::size_t nf = 0;
    std::size_t block_bins = 0;
    while (next < f_end && nf < kFeatureBlock) {
      if (binned.bin_count(next) > 1) {
        feats[nf] = next;
        codes[nf] = binned.codes<Code>(next);
        nbins[nf] = binned.bin_count(next);
        block_bins = std::max(block_bins, nbins[nf]);
        ++nf;
      }
      ++next;
    }
    if (nf == 0) continue;

    for (std::size_t s = 0; s < open; ++s) {
      // A node with fewer than two rows cannot split (the materialization
      // gate below would reject it; no candidate can clear the strict-`>`
      // 0.0 bar either) — skip its scan entirely.
      const std::uint32_t count = spans[s].count;
      if (count < 2 || node_h[s] < h_floor) continue;
      const std::uint32_t* span = row_index + spans[s].begin;
      // Touched-range bookkeeping costs two cmovs per (row, lane); worth
      // it only when the node's rows are sparser than the block's widest
      // histogram. Either mode selects identically — full range is the
      // historical scan itself, the truncated range drops only provably
      // losing candidates (see header comment).
      const bool track = can_truncate && count < block_bins;
      std::size_t lo[kFeatureBlock], hi[kFeatureBlock];
      for (std::size_t j = 0; j < nf; ++j) {
        lo[j] = track ? widest : 0;
        hi[j] = track ? 0 : nbins[j] - 1;
      }

      // Per-(feature, bin) accumulation order is the span's ascending
      // row order regardless of the block shape: every row updates each
      // lane's histogram exactly once, lanes are disjoint slices.
      const auto accumulate = [&](auto lanes, auto mode_tag) {
        constexpr std::size_t kLanes = decltype(lanes)::value;
        constexpr int kMode = decltype(mode_tag)::value;
        for (std::uint32_t k = 0; k < count; ++k) {
          const std::size_t i = span[k];
          const double* __restrict pair = gh_pairs + 2 * i;
          const double g = pair[0];
          const double h = pair[1];
          for (std::size_t j = 0; j < kLanes; ++j) {
            const std::size_t b = codes[j][i];
            double* __restrict cell = hist.data() + (j * widest + b) * 2;
            cell[0] += g;
            cell[1] += h;
            if constexpr (kMode == 1) {
              lo[j] = std::min(lo[j], b);
              hi[j] = std::max(hi[j], b);
            }
          }
        }
      };
      const auto dispatch = [&](auto mode_tag) {
        switch (nf) {
          case 1:
            accumulate(std::integral_constant<std::size_t, 1>{}, mode_tag);
            break;
          case 2:
            accumulate(std::integral_constant<std::size_t, 2>{}, mode_tag);
            break;
          case 3:
            accumulate(std::integral_constant<std::size_t, 3>{}, mode_tag);
            break;
          default:
            accumulate(std::integral_constant<std::size_t, 4>{}, mode_tag);
            break;
        }
      };
      if (track) {
        dispatch(std::integral_constant<int, 1>{});
      } else {
        dispatch(std::integral_constant<int, 0>{});
      }

      const double g_total = node_g[s];
      const double h_total = node_h[s];
      const double parent_score = node_parent[s];
      for (std::size_t j = 0; j < nf; ++j) {
        const std::size_t feature = feats[j];
        const std::size_t bins = nbins[j];
        const double* __restrict slice = hist.data() + j * widest * 2;

        double gl = 0.0, hl = 0.0;
        double best_gain = local_best[s].gain;
        const std::size_t scan_begin = lo[j];
        const std::size_t scan_end = std::min(hi[j] + 1, bins - 1);
        // hl only grows (hessian cells are nonnegative and rounding is
        // monotone), so hr = h_total - hl only shrinks: the first
        // min_child_weight failure on the right ends the lane — every
        // later candidate fails the same historical test. The prefix
        // `continue` is the historical check verbatim.
        for (std::size_t b = scan_begin; b < scan_end; ++b) {
          gl += slice[b * 2];
          hl += slice[b * 2 + 1];
          if (hl < min_cw) continue;
          const double gr = g_total - gl;
          const double hr = h_total - hl;
          if (hr < min_cw) break;
          if (can_filter) {
            // Speculative division-free bound; hr >= min_cw >= 0 here, so
            // the divisors are >= lambda >= 1 and the bound lemma applies.
            const double bound =
                0.5 * (gl * gl * recip_upper(hl + lambda) +
                       gr * gr * recip_upper(hr + lambda) - parent_score) -
                gamma;
            if (!(bound > best_gain)) continue;
          }
          const double gain =
              0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) -
                     parent_score) -
              gamma;
          if (gain > best_gain) {
            best_gain = gain;
            local_best[s] = SplitChoice{gain, feature, b, true};
          }
        }
        // Restore the all-zero invariant over the touched range only.
        const auto first = static_cast<std::ptrdiff_t>((j * widest + lo[j]) * 2);
        const auto last = static_cast<std::ptrdiff_t>((j * widest + hi[j] + 1) * 2);
        std::fill(hist.begin() + first, hist.begin() + last, 0.0);
      }
    }
  }
}

}  // namespace

void GradientBoostedTrees::fit(const Dataset& data) {
  // scrubber-deterministic-begin
  trees_.clear();
  importance_.assign(data.n_cols(), FeatureGain{});
  for (std::size_t j = 0; j < data.n_cols(); ++j) importance_[j].feature = j;

  const std::size_t n = data.n_rows();
  if (n == 0) {
    base_margin_ = 0.0;
    compiled_ = CompiledForest::compile(trees_, base_margin_,
                                        params_.missing_surrogate());
    return;
  }
  // Initialize the margin at the log-odds of the base rate.
  const double pos = static_cast<double>(data.positive_count());
  const double base_rate = std::clamp(pos / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
  base_margin_ = std::log(base_rate / (1.0 - base_rate));

  // Shared immutable binned copy: grid-search cells and repeated fits
  // over the same encoded fold reuse one matrix (ml/bin_cache.hpp).
  const MissingPolicy policy = params_.missing_reserved_bin
                                   ? MissingPolicy::kReservedBin
                                   : MissingPolicy::kMinusOne;
  const std::shared_ptr<const BinnedMatrix> shared =
      BinCache::instance().get_or_build(data, params_.max_bins, policy);
  const BinnedMatrix& binned = *shared;

  std::vector<double> margin(n, base_margin_);
  std::vector<double> gh(2 * n);  // interleaved (grad, hess) pairs
  std::vector<std::uint32_t> row_node(n);  // node id each row sits in
  // Ping-pong row-partition buffers: the active one holds every open
  // node's rows as contiguous ascending spans; splits stably partition
  // each span into the other buffer.
  std::vector<std::uint32_t> rows_cur(n), rows_next(n);

  util::ThreadPool& pool = util::training_pool();

  // Fit-lifetime scan workspaces: the feature-chunk partition is fixed
  // for the whole fit, so per-chunk histogram buffers and argmax slots
  // allocate once and reuse across every level of every round.
  const std::size_t n_chunks = pool.plan_chunks(binned.cols());
  std::vector<std::vector<double>> chunk_hist(n_chunks);
  std::vector<std::vector<SplitChoice>> chunk_best(n_chunks);

  for (std::size_t round = 0; round < params_.n_estimators; ++round) {
    // Per-row slots: thread-count independent by construction.
    pool.parallel_for(n, [&](std::size_t i) {
      const double p = sigmoid(margin[i]);
      gh[2 * i] = p - static_cast<double>(data.label(i));
      gh[2 * i + 1] = std::max(p * (1.0 - p), 1e-16);
    });

    Tree tree;
    tree.push_back(Node{});
    std::fill(row_node.begin(), row_node.end(), std::uint32_t{0});
    std::iota(rows_cur.begin(), rows_cur.end(), std::uint32_t{0});
    std::vector<std::size_t> frontier{0};  // node ids open at current depth
    std::vector<NodeSpan> spans{NodeSpan{0, static_cast<std::uint32_t>(n)}};

    for (std::size_t depth = 0; depth < params_.max_depth && !frontier.empty();
         ++depth) {
      const std::size_t open = frontier.size();

      // Per-node (G, H) totals: each slot sums its span ascending — the
      // historical global-scan stream restricted to that node.
      std::vector<double> node_g(open, 0.0), node_h(open, 0.0);
      pool.parallel_for(open, [&](std::size_t s) {
        const std::uint32_t* span = rows_cur.data() + spans[s].begin;
        double g = 0.0, h = 0.0;
        for (std::uint32_t k = 0; k < spans[s].count; ++k) {
          g += gh[2 * span[k]];
          h += gh[2 * span[k] + 1];
        }
        node_g[s] = g;
        node_h[s] = h;
      });

      // Per-feature histograms over the open spans, fanned out over
      // contiguous feature chunks. Each feature is accumulated by exactly
      // one thread; per-chunk argmaxes merge in ascending chunk order,
      // which equals the sequential ascending-feature fold (strict `>`
      // keeps the earliest maximum) for any chunk partition.
      for (auto& slots : chunk_best) slots.assign(open, SplitChoice{});
      pool.parallel_for_chunks(
          binned.cols(),
          [&](std::size_t chunk, std::size_t f_begin, std::size_t f_end) {
            if (binned.narrow()) {
              scan_features<std::uint8_t>(binned, f_begin, f_end,
                                          rows_cur.data(), spans, gh.data(),
                                          node_g, node_h, params_,
                                          chunk_hist[chunk],
                                          chunk_best[chunk]);
            } else {
              scan_features<std::uint16_t>(binned, f_begin, f_end,
                                           rows_cur.data(), spans, gh.data(),
                                           node_g, node_h, params_,
                                           chunk_hist[chunk],
                                           chunk_best[chunk]);
            }
          });
      std::vector<SplitChoice> best(open);
      for (std::size_t chunk = 0; chunk < n_chunks; ++chunk) {
        for (std::size_t s = 0; s < open; ++s) {
          if (chunk_best[chunk][s].gain > best[s].gain) {
            best[s] = chunk_best[chunk][s];
          }
        }
      }

      // Materialize accepted splits; spans of declined nodes simply drop
      // out of the active buffer (their rows keep their row_node id).
      std::vector<std::size_t> next_frontier;
      std::vector<std::size_t> split_slot;  // slots with accepted splits
      for (std::size_t s = 0; s < open; ++s) {
        const std::size_t node_id = frontier[s];
        if (!best[s].valid || spans[s].count < 2) continue;
        const auto left = static_cast<std::int32_t>(tree.size());
        {
          Node& node = tree[node_id];
          node.feature = static_cast<std::uint32_t>(best[s].feature);
          node.threshold = binned.edge_value(best[s].feature, best[s].bin);
          node.left = left;
          node.right = left + 1;
        }  // reference dies before push_back may reallocate the vector
        split_slot.push_back(s);
        tree.push_back(Node{});
        tree.push_back(Node{});
        next_frontier.push_back(static_cast<std::size_t>(left));
        next_frontier.push_back(static_cast<std::size_t>(left + 1));
        auto& gain_entry = importance_[best[s].feature];
        gain_entry.total_gain += best[s].gain;
        ++gain_entry.split_count;
      }
      if (next_frontier.empty()) break;

      // Stable partition into the other buffer: left counts first (the
      // children's span offsets need them), then each split writes its
      // two children into disjoint ranges — parallel over splits, output
      // independent of the thread count by construction. Writing left
      // rows then right rows in span order preserves ascending global
      // row order within every child span.
      const std::size_t n_splits = split_slot.size();
      std::vector<std::uint32_t> left_count(n_splits, 0);
      pool.parallel_for(n_splits, [&](std::size_t k) {
        const NodeSpan span = spans[split_slot[k]];
        const SplitChoice& choice = best[split_slot[k]];
        std::uint32_t count = 0;
        for (std::uint32_t r = 0; r < span.count; ++r) {
          const std::uint32_t i = rows_cur[span.begin + r];
          count += binned.bin(i, choice.feature) <= choice.bin ? 1U : 0U;
        }
        left_count[k] = count;
      });

      std::vector<NodeSpan> next_spans(2 * n_splits);
      std::uint32_t offset = 0;
      for (std::size_t k = 0; k < n_splits; ++k) {
        const NodeSpan span = spans[split_slot[k]];
        next_spans[2 * k] = NodeSpan{offset, left_count[k]};
        next_spans[2 * k + 1] =
            NodeSpan{offset + left_count[k], span.count - left_count[k]};
        offset += span.count;
      }
      pool.parallel_for(n_splits, [&](std::size_t k) {
        const NodeSpan span = spans[split_slot[k]];
        const SplitChoice& choice = best[split_slot[k]];
        const auto left_id =
            static_cast<std::uint32_t>(tree[frontier[split_slot[k]]].left);
        std::uint32_t* left_out = rows_next.data() + next_spans[2 * k].begin;
        std::uint32_t* right_out =
            rows_next.data() + next_spans[2 * k + 1].begin;
        for (std::uint32_t r = 0; r < span.count; ++r) {
          const std::uint32_t i = rows_cur[span.begin + r];
          const bool goes_left = binned.bin(i, choice.feature) <= choice.bin;
          row_node[i] = left_id + (goes_left ? 0U : 1U);
          *(goes_left ? left_out : right_out)++ = i;
        }
      });

      rows_cur.swap(rows_next);
      spans = std::move(next_spans);
      frontier = std::move(next_frontier);
    }

    // Leaf weights: w = -G / (H + lambda), shrunk by the learning rate.
    std::vector<double> leaf_g(tree.size(), 0.0), leaf_h(tree.size(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      leaf_g[row_node[i]] += gh[2 * i];
      leaf_h[row_node[i]] += gh[2 * i + 1];
    }
    for (std::size_t t = 0; t < tree.size(); ++t) {
      if (tree[t].is_leaf()) {
        tree[t].value = -params_.learning_rate * leaf_g[t] /
                        (leaf_h[t] + params_.reg_lambda);
      }
    }
    for (std::size_t i = 0; i < n; ++i) margin[i] += tree[row_node[i]].value;
    trees_.push_back(std::move(tree));
  }
  compiled_ = CompiledForest::compile(trees_, base_margin_,
                                      params_.missing_surrogate());
  // scrubber-deterministic-end
}

double GradientBoostedTrees::margin(std::span<const double> row) const {
  const double missing = params_.missing_surrogate();
  double total = base_margin_;
  for (const Tree& tree : trees_) {
    std::size_t index = 0;
    while (!tree[index].is_leaf()) {
      const Node& node = tree[index];
      const double v = node.feature < row.size() && !is_missing(row[node.feature])
                           ? row[node.feature]
                           : missing;
      index = static_cast<std::size_t>(v <= node.threshold ? node.left : node.right);
    }
    total += tree[index].value;
  }
  return total;
}

double GradientBoostedTrees::score(std::span<const double> row) const {
  return sigmoid(margin(row));
}

void GradientBoostedTrees::score_batch(const Dataset& data,
                                       std::span<double> out) const {
  // Padded assembly: zero-fill up to a whole SIMD lane group so the AVX2
  // kernel can run full groups over the ragged tail (no copy when the row
  // count already divides evenly — raw_padded returns the live buffer).
  std::vector<double> padded;
  compiled_.score_batch(data.raw_padded(kSimdLaneRows, padded), data.n_cols(),
                        out);
}

std::vector<FeatureGain> GradientBoostedTrees::gain_importance() const {
  std::vector<FeatureGain> sorted = importance_;
  std::erase_if(sorted, [](const FeatureGain& g) { return g.split_count == 0; });
  std::sort(sorted.begin(), sorted.end(),
            [](const FeatureGain& a, const FeatureGain& b) {
              return a.average_gain() > b.average_gain();
            });
  return sorted;
}

void GradientBoostedTrees::restore(std::vector<Tree> trees, double base_margin,
                                   GbtParams params,
                                   std::vector<FeatureGain> importance) {
  trees_ = std::move(trees);
  base_margin_ = base_margin;
  params_ = params;
  importance_ = std::move(importance);
  compiled_ = CompiledForest::compile(trees_, base_margin_,
                                      params_.missing_surrogate());
}

}  // namespace scrubber::ml
