#include "ml/woe.hpp"

#include <cmath>
#include <stdexcept>

namespace scrubber::ml {

void WoeColumn::finalize() {
  woe_.clear();
  woe_.reserve(counts_.size());
  // +1 smoothing on both conditional counts (footnote 1 of the paper).
  // Insertion order of counts_ (first observation of each value) becomes
  // the iteration order of woe_ — and thus the serialization order.
  counts_.for_each([this](std::int64_t value, const Counts& counts) {
    const double p1 = (counts.positive + 1.0) / (total_positive_ + 1.0);
    const double p0 = (counts.negative + 1.0) / (total_negative_ + 1.0);
    woe_[value] = std::log(p1 / p0);
  });
}

void WoeColumn::decay(double keep) {
  total_positive_ *= keep;
  total_negative_ *= keep;
  // One extract_if pass scales every entry and drops the forgotten ones;
  // survivors keep their insertion order.
  counts_.extract_if(
      [keep](std::int64_t, Counts& counts) {
        counts.positive *= keep;
        counts.negative *= keep;
        return counts.positive + counts.negative < 0.01;  // forgotten
      },
      [](std::int64_t, Counts&&) {});
}

std::vector<std::int64_t> WoeColumn::values_above(double threshold) const {
  std::vector<std::int64_t> out;
  woe_.for_each([&](std::int64_t value, double woe) {
    if (woe > threshold) out.push_back(value);
  });
  return out;
}

namespace {

/// Fits WoE tables for the categorical columns of `data`, skipping rows
/// whose index modulo `folds` equals `skip_fold` (no skipping when
/// `folds` == 0).
std::vector<std::optional<WoeColumn>> fit_tables(const Dataset& data,
                                                 std::size_t folds,
                                                 std::size_t skip_fold) {
  std::vector<std::optional<WoeColumn>> columns(data.n_cols());
  for (std::size_t j = 0; j < data.n_cols(); ++j) {
    if (data.column(j).kind == ColumnKind::kCategorical) columns[j].emplace();
  }
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    if (folds > 0 && i % folds == skip_fold) continue;
    const auto row = data.row(i);
    const int y = data.label(i);
    for (std::size_t j = 0; j < data.n_cols(); ++j) {
      if (!columns[j] || is_missing(row[j])) continue;
      columns[j]->observe(static_cast<std::int64_t>(std::llround(row[j])), y);
    }
  }
  for (auto& column : columns) {
    if (column) column->finalize();
  }
  return columns;
}

}  // namespace

void WoeEncoder::fit(const Dataset& data) {
  columns_ = fit_tables(data, 0, 0);
}

void WoeEncoder::update(const Dataset& data, double keep) {
  if (columns_.size() != data.n_cols())
    throw std::invalid_argument("WoeEncoder::update: schema mismatch");
  for (auto& column : columns_) {
    if (column && keep < 1.0) column->decay(keep);
  }
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const auto row = data.row(i);
    const int y = data.label(i);
    for (std::size_t j = 0; j < data.n_cols(); ++j) {
      if (!columns_[j] || is_missing(row[j])) continue;
      columns_[j]->observe(static_cast<std::int64_t>(std::llround(row[j])), y);
    }
  }
  for (auto& column : columns_) {
    if (column) column->finalize();
  }
}

Dataset WoeEncoder::fit_transform(const Dataset& data) {
  if (cross_fit_folds_ <= 1 || data.n_rows() < 2 * cross_fit_folds_) {
    fit(data);
    return apply_to_dataset(data);
  }
  // Out-of-fold encoding: row i is encoded by tables fit without fold
  // i % folds, so memorized per-row identifiers carry no target signal.
  Dataset out = data;
  for (std::size_t fold = 0; fold < cross_fit_folds_; ++fold) {
    WoeEncoder fold_encoder(0);
    fold_encoder.columns_ = fit_tables(data, cross_fit_folds_, fold);
    for (std::size_t i = fold; i < data.n_rows(); i += cross_fit_folds_) {
      fold_encoder.apply(out.row(i));
    }
  }
  // Final tables over all rows (used by apply()/inference from here on).
  fit(data);
  return out;
}

void WoeEncoder::encode_rows(std::span<double> cells,
                             std::size_t width) const {
  if (width == 0) return;
  const std::size_t n = cells.size() / width;
  for (std::size_t j = 0; j < width && j < columns_.size(); ++j) {
    if (!columns_[j]) continue;
    const WoeColumn& column = *columns_[j];
    double* cell = cells.data() + j;
    for (std::size_t i = 0; i < n; ++i, cell += width) {
      if (is_missing(*cell)) {
        *cell = 0.0;  // missing categorical: neutral evidence
        continue;
      }
      *cell = column.encode(static_cast<std::int64_t>(std::llround(*cell)));
    }
  }
}

Dataset WoeEncoder::apply_to_dataset(const Dataset& data) const {
  Dataset out = data;
  encode_rows(out.cells(), out.n_cols());
  return out;
}

void WoeEncoder::apply(std::span<double> row) const {
  for (std::size_t j = 0; j < row.size() && j < columns_.size(); ++j) {
    if (!columns_[j]) continue;
    if (is_missing(row[j])) {
      row[j] = 0.0;  // missing categorical: neutral evidence
      continue;
    }
    row[j] = columns_[j]->encode(static_cast<std::int64_t>(std::llround(row[j])));
  }
}

const WoeColumn& WoeEncoder::column(std::size_t index) const {
  if (index >= columns_.size() || !columns_[index])
    throw std::out_of_range("column is not WoE-encoded");
  return *columns_[index];
}

WoeColumn& WoeEncoder::column(std::size_t index) {
  if (index >= columns_.size() || !columns_[index])
    throw std::out_of_range("column is not WoE-encoded");
  return *columns_[index];
}

std::vector<std::size_t> WoeEncoder::encoded_columns() const {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    if (columns_[j]) out.push_back(j);
  }
  return out;
}

}  // namespace scrubber::ml
