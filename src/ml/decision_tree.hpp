#pragma once
// CART binary decision tree with Gini impurity, exact split search, and
// minimal cost-complexity (ccp_alpha) pruning — the DT model of Table 3,
// with the hyperparameters of Table 4 (Appendix C).

#include <cstdint>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/compiled_tree.hpp"

namespace scrubber::ml {

/// Hyperparameters mirroring scikit-learn's DecisionTreeClassifier subset
/// searched in Table 4.
struct DecisionTreeParams {
  std::size_t max_depth = 0;            ///< 0 = unlimited
  std::size_t min_samples_split = 2;    ///< minimum node size to consider a split
  std::size_t min_samples_leaf = 1;     ///< minimum samples in each child
  double min_impurity_decrease = 0.0;   ///< minimum weighted impurity decrease
  double ccp_alpha = 0.0;               ///< cost-complexity pruning strength
};

/// CART decision tree classifier.
class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeParams params = {}) noexcept
      : params_(params) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] double score(std::span<const double> row) const override;
  /// Batch scoring through the compiled (flattened) tree; bit-identical
  /// to per-row score().
  void score_batch(const Dataset& data, std::span<double> out) const override;
  [[nodiscard]] std::string name() const override { return "DT"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<DecisionTree>(*this);
  }

  /// Number of nodes after training (and pruning).
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Maximum depth reached by any leaf.
  [[nodiscard]] std::size_t depth() const noexcept;

  [[nodiscard]] const DecisionTreeParams& params() const noexcept { return params_; }

  /// Serializable node (exposed for model_io).
  struct Node {
    // Internal node: feature/threshold and child indices; leaf: value only.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint32_t feature = 0;
    double threshold = 0.0;
    double value = 0.0;       ///< positive-class fraction at this node
    std::size_t samples = 0;  ///< training samples reaching the node
    double impurity = 0.0;    ///< Gini impurity at the node

    [[nodiscard]] bool is_leaf() const noexcept { return left < 0; }
  };

  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }

  /// Rebuilds a trained tree (model_io).
  void restore(std::vector<Node> nodes) {
    nodes_ = std::move(nodes);
    compiled_ = CompiledTree::compile(nodes_);
  }

  /// Flattened batch-inference form, rebuilt by fit()/restore().
  [[nodiscard]] const CompiledTree& compiled() const noexcept {
    return compiled_;
  }

 private:
  friend class TreeBuilder;

  void prune_ccp();

  DecisionTreeParams params_;
  std::vector<Node> nodes_;
  CompiledTree compiled_;
};

}  // namespace scrubber::ml
