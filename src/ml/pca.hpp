#pragma once
// Principal component analysis via cyclic Jacobi eigendecomposition of the
// feature covariance matrix. Used (i) as the dimensionality reduction stage
// of the neural-network pipeline (Figure 8) and (ii) for the explained-
// variance analysis of Appendix B / Figure 16b.
//
// The aggregated feature space is ~150 columns, so an O(d^3) dense
// eigensolver is entirely adequate.

#include <vector>

#include "ml/classifier.hpp"

namespace scrubber::ml {

/// PCA transformer projecting rows onto the top-k principal components.
class Pca final : public Transformer {
 public:
  /// `components` = number of output dimensions (0 = keep all).
  explicit Pca(std::size_t components = 0) noexcept : components_(components) {}

  void fit(const Dataset& data) override;

  /// In-place apply is only valid when output width equals input width;
  /// prefer transform() in pipelines.
  void apply(std::span<double> row) const override;

  void transform(std::span<const double> row, std::span<double> out) const override;

  [[nodiscard]] std::size_t output_width(std::size_t input_width) const override {
    return components_ == 0 ? input_width : std::min(components_, input_width);
  }

  [[nodiscard]] std::string name() const override { return "PCA"; }
  [[nodiscard]] std::unique_ptr<Transformer> clone() const override {
    return std::make_unique<Pca>(*this);
  }

  /// Eigenvalues (descending) of the covariance matrix, i.e. component
  /// variances over the training data.
  [[nodiscard]] const std::vector<double>& eigenvalues() const noexcept {
    return eigenvalues_;
  }

  /// Fraction of total variance explained by the first k components.
  [[nodiscard]] double explained_variance(std::size_t k) const noexcept;

  /// Cumulative explained-variance curve (index i = first i+1 components).
  [[nodiscard]] std::vector<double> explained_variance_curve() const;

  [[nodiscard]] std::size_t components() const noexcept { return components_; }
  [[nodiscard]] std::size_t input_width() const noexcept { return input_width_; }
  [[nodiscard]] const std::vector<double>& means() const noexcept { return mean_; }
  [[nodiscard]] const std::vector<double>& components_matrix() const noexcept {
    return components_matrix_;
  }

  /// Rebuilds a fitted PCA (model_io).
  void restore(std::size_t components, std::size_t input_width,
               std::vector<double> means, std::vector<double> eigenvalues,
               std::vector<double> matrix) {
    components_ = components;
    input_width_ = input_width;
    mean_ = std::move(means);
    eigenvalues_ = std::move(eigenvalues);
    components_matrix_ = std::move(matrix);
  }

 private:
  std::size_t components_;
  std::size_t input_width_ = 0;
  std::vector<double> mean_;
  std::vector<double> eigenvalues_;        // descending
  std::vector<double> components_matrix_;  // row r = r-th principal axis
};

/// Cyclic Jacobi eigendecomposition of a symmetric matrix (row-major, n*n).
/// Returns eigenvalues (unsorted) and fills `vectors` with eigenvectors as
/// columns. Exposed for testing and reuse.
std::vector<double> jacobi_eigen_symmetric(std::vector<double> matrix,
                                           std::size_t n,
                                           std::vector<double>& vectors,
                                           int max_sweeps = 64);

}  // namespace scrubber::ml
