#include "ml/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace scrubber::ml {

std::vector<double> jacobi_eigen_symmetric(std::vector<double> a, std::size_t n,
                                           std::vector<double>& vectors,
                                           int max_sweeps) {
  if (a.size() != n * n) throw std::invalid_argument("matrix size mismatch");
  vectors.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) vectors[i * n + i] = 1.0;

  auto at = [&](std::size_t r, std::size_t c) -> double& { return a[r * n + c]; };
  auto vt = [&](std::size_t r, std::size_t c) -> double& {
    return vectors[r * n + c];
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += at(p, q) * at(p, q);
    if (off < 1e-22) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = at(p, p);
        const double aqq = at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable tangent of the rotation angle.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = at(k, p);
          const double akq = at(k, q);
          at(k, p) = c * akp - s * akq;
          at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = at(p, k);
          const double aqk = at(q, k);
          at(p, k) = c * apk - s * aqk;
          at(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = vt(k, p);
          const double vkq = vt(k, q);
          vt(k, p) = c * vkp - s * vkq;
          vt(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<double> eigenvalues(n);
  for (std::size_t i = 0; i < n; ++i) eigenvalues[i] = at(i, i);
  return eigenvalues;
}

void Pca::fit(const Dataset& data) {
  const std::size_t d = data.n_cols();
  const std::size_t rows = data.n_rows();
  input_width_ = d;
  mean_.assign(d, 0.0);
  eigenvalues_.clear();
  components_matrix_.clear();
  if (rows == 0 || d == 0) return;

  for (std::size_t i = 0; i < rows; ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < d; ++j) mean_[j] += is_missing(row[j]) ? 0.0 : row[j];
  }
  for (double& m : mean_) m /= static_cast<double>(rows);

  // Covariance matrix (biased 1/n; scale does not affect directions).
  std::vector<double> cov(d * d, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto row = data.row(i);
    for (std::size_t p = 0; p < d; ++p) {
      const double vp = (is_missing(row[p]) ? 0.0 : row[p]) - mean_[p];
      for (std::size_t q = p; q < d; ++q) {
        const double vq = (is_missing(row[q]) ? 0.0 : row[q]) - mean_[q];
        cov[p * d + q] += vp * vq;
      }
    }
  }
  const double inv_n = 1.0 / static_cast<double>(rows);
  for (std::size_t p = 0; p < d; ++p) {
    for (std::size_t q = p; q < d; ++q) {
      cov[p * d + q] *= inv_n;
      cov[q * d + p] = cov[p * d + q];
    }
  }

  std::vector<double> vectors;
  std::vector<double> values = jacobi_eigen_symmetric(std::move(cov), d, vectors);

  // Sort components by descending eigenvalue.
  std::vector<std::size_t> order(d);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return values[x] > values[y]; });

  const std::size_t keep = output_width(d);
  eigenvalues_.resize(d);
  for (std::size_t r = 0; r < d; ++r) eigenvalues_[r] = std::max(0.0, values[order[r]]);
  components_matrix_.assign(keep * d, 0.0);
  for (std::size_t r = 0; r < keep; ++r) {
    const std::size_t src = order[r];
    for (std::size_t j = 0; j < d; ++j)
      components_matrix_[r * d + j] = vectors[j * d + src];
  }
}

void Pca::apply(std::span<double> row) const {
  if (output_width(input_width_) != input_width_)
    throw std::logic_error("Pca::apply requires full-width projection; use transform");
  std::vector<double> out(input_width_);
  transform(row, out);
  std::copy(out.begin(), out.end(), row.begin());
}

void Pca::transform(std::span<const double> row, std::span<double> out) const {
  const std::size_t d = input_width_;
  const std::size_t keep = out.size();
  for (std::size_t r = 0; r < keep; ++r) {
    double dot = 0.0;
    for (std::size_t j = 0; j < d && j < row.size(); ++j) {
      const double centered = (is_missing(row[j]) ? 0.0 : row[j]) - mean_[j];
      dot += components_matrix_[r * d + j] * centered;
    }
    out[r] = dot;
  }
}

double Pca::explained_variance(std::size_t k) const noexcept {
  if (eigenvalues_.empty()) return 0.0;
  double total = 0.0;
  for (const double v : eigenvalues_) total += v;
  if (total <= 0.0) return 0.0;
  double top = 0.0;
  for (std::size_t i = 0; i < k && i < eigenvalues_.size(); ++i)
    top += eigenvalues_[i];
  return top / total;
}

std::vector<double> Pca::explained_variance_curve() const {
  std::vector<double> curve(eigenvalues_.size(), 0.0);
  for (std::size_t i = 0; i < eigenvalues_.size(); ++i)
    curve[i] = explained_variance(i + 1);
  return curve;
}

}  // namespace scrubber::ml
