// Training-plane throughput — wall time of the three heaviest offline
// kernels (GBT fit, FP-Growth rule mining, grid search with 3-fold CV)
// swept over learning-plane thread counts on one seeded flowgen trace.
// This is the scaling baseline for the learning-plane parallelism PR and
// every future training-path change; results land in BENCH_training.json
// so the training-perf trajectory is tracked alongside runtime throughput.
//
// Expectation (multi-core hosts): >= 2x on gbt_train and fpgrowth at 4
// threads vs 1 thread. On a single-core host the pool participants
// serialize and the ratio degenerates to ~1x; rows whose thread count
// exceeds hardware_concurrency carry "advisory": true (and a loud stderr
// warning) so trajectory tooling can tell those runs apart.
//
// Every run is also a correctness probe: the determinism contract says
// every kernel output is bit-identical for any thread count, so each
// swept row re-checks its serialized GBT model, mined rule set, and grid
// winner/scores against the 1-thread reference. Any divergence exits
// non-zero. `--smoke` shrinks the trace and sweeps threads {1, 2} while
// keeping all the assertions — the mode the perf-smoke CI job runs — and
// dumps the per-thread-count model artifacts (training_model_t<N>.json)
// so the job can byte-compare them in-job.
//
// GBT breakdown (per row): alongside the trajectory-comparable cold fit
// (BinCache cleared first), the row times the BinnedMatrix build alone
// (the binning share of a cold fit), warm fits that hit the BinCache
// (the steady-state retraining cost), and the embedded seed engine
// (bench/gbt_oracle.hpp) on the same data — asserting the production
// model's bytes EQUAL the oracle's, and that the warm fits actually hit
// the cache. The oracle-relative speedups and BinCache counters land in
// BENCH_training.json; like every bench here, speed is recorded, bytes
// are asserted.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "../bench/common.hpp"
#include "../bench/gbt_oracle.hpp"
#include "arm/fpgrowth.hpp"
#include "arm/item.hpp"
#include "ml/bin_cache.hpp"
#include "ml/binned.hpp"
#include "ml/gbt.hpp"
#include "ml/grid_search.hpp"
#include "ml/model_io.hpp"
#include "ml/pipeline.hpp"
#include "util/json.hpp"

namespace {

using namespace scrubber;

int failures = 0;

/// Determinism check: prints and counts a failure unless `ok`.
void expect_identical(bool ok, unsigned threads, const char* what) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr, "FAIL determinism: %s differs at %u threads vs 1\n",
               what, threads);
}

/// Generic correctness gate (oracle identity, cache behavior).
void expect(bool ok, const char* what) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr, "FAIL: %s\n", what);
}

/// Canonical text form of a grid-search result: winner plus every
/// {params, score} pair at full precision, for exact comparison.
std::string grid_fingerprint(const ml::GridSearchResult& result) {
  std::string out;
  char buffer[64];
  const auto append_point = [&](const ml::ParamPoint& point) {
    for (const auto& [key, value] : point) {
      std::snprintf(buffer, sizeof(buffer), "%s=%.17g;", key.c_str(), value);
      out += buffer;
    }
  };
  append_point(result.best_params);
  std::snprintf(buffer, sizeof(buffer), "|best=%.17g|", result.best_score);
  out += buffer;
  for (const auto& [point, score] : result.all_scores) {
    append_point(point);
    std::snprintf(buffer, sizeof(buffer), "->%.17g|", score);
    out += buffer;
  }
  return out;
}

/// One kernel's timings per swept thread count.
struct KernelRow {
  double seconds = 0.0;
  bool identical = true;  ///< output byte-identical to the 1-thread run
};

struct SweepRow {
  unsigned threads = 0;
  bool advisory = false;  ///< threads exceed hardware_concurrency
  KernelRow gbt, fpgrowth, grid;
  // GBT breakdown.
  double bin_build_seconds = 0.0;  ///< BinnedMatrix construction alone
  double warm_seconds = 0.0;       ///< per-fit, binning served by BinCache
  double oracle_seconds = 0.0;     ///< embedded seed engine, same data
  bool oracle_identical = true;    ///< model bytes == oracle bytes
  ml::BinCache::Stats cache;       ///< counter deltas across this row
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = [&] {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--smoke") == 0) return true;
    }
    return false;
  }();
  bench::print_header("Training",
                      "learning-plane throughput (threads x kernel sweep)");
  bench::print_expectation(
      ">= 2x on gbt_train and fpgrowth at 4 threads vs 1 thread on a "
      "multi-core host; >= 2x single-thread GBT fit vs the embedded "
      "seed-engine oracle; bit-identical outputs at every thread count "
      "and vs the oracle");

  // One fixed trace for every configuration: hours of the large IXP-US1
  // feed (minutes of it in --smoke). Aggregated records feed GBT and the
  // grid search; itemized flows feed FP-Growth.
  const std::uint32_t kMinutes = smoke ? 90 : 12 * 60;
  constexpr std::uint64_t kSeed = 4100;
  const auto trace = bench::make_balanced(flowgen::ixp_us1(), kSeed, 0, kMinutes);
  const core::Aggregator aggregator;
  const auto aggregated = aggregator.aggregate(trace.flows);
  const arm::Itemizer itemizer;
  std::vector<arm::Transaction> transactions;
  transactions.reserve(trace.flows.size());
  for (const auto& flow : trace.flows) {
    transactions.push_back(itemizer.itemize(flow));
  }
  std::printf("trace: %zu flows -> %zu records, %zu transactions, %u min%s\n\n",
              trace.flows.size(), aggregated.size(), transactions.size(),
              kMinutes, smoke ? " [smoke]" : "");

  // Thread sweep: {1, 2} in smoke, {1, 2, 4, hardware} otherwise. The
  // `--train-threads` flag appends an extra point so operators can probe
  // their machine's sweet spot; it is parsed by the shared helper, which
  // also configures the pool (re-configured per row below anyway).
  const unsigned requested = bench::configure_train_threads(argc, argv);
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> sweep{1, 2};
  if (!smoke) {
    sweep.push_back(4);
    if (std::find(sweep.begin(), sweep.end(), hardware) == sweep.end()) {
      sweep.push_back(hardware);
    }
  }
  if (std::find(sweep.begin(), sweep.end(), requested) == sweep.end()) {
    sweep.push_back(requested);
  }
  std::sort(sweep.begin(), sweep.end());

  ml::GbtParams gbt_params;
  gbt_params.n_estimators = smoke ? 8 : 24;
  gbt_params.max_depth = 6;
  arm::FpGrowthParams fp_params;
  fp_params.min_support = 0.01;
  const auto grid = ml::param_grid(
      {{"n_estimators", {4.0, 8.0}}, {"max_depth", {3.0, 4.0}}});
  const auto grid_factory = [](const ml::ParamPoint& point) {
    ml::GbtParams params;
    params.n_estimators = static_cast<std::size_t>(point.at("n_estimators"));
    params.max_depth = static_cast<std::size_t>(point.at("max_depth"));
    ml::Pipeline p;
    p.set_classifier(std::make_unique<ml::GradientBoostedTrees>(params));
    return p;
  };

  // 1-thread references for the bit-identity checks.
  std::string reference_model, reference_rules, reference_grid;
  std::vector<SweepRow> rows;

  for (const unsigned threads : sweep) {
    SweepRow row;
    row.threads = threads;
    row.advisory = threads > hardware;
    if (row.advisory) {
      std::fprintf(stderr,
                   "WARNING: %u threads on %u hardware threads — pool "
                   "participants serialize, row marked advisory\n",
                   threads, hardware);
    }
    util::set_training_threads(threads);
    ml::BinCache& cache = ml::BinCache::instance();
    cache.clear();
    const ml::BinCache::Stats cache_start = cache.stats();

    // GBT training: cold fit (empty cache — bins the data itself), the
    // trajectory-comparable number.
    util::Stopwatch gbt_sw;
    ml::GradientBoostedTrees model(gbt_params);
    model.fit(aggregated.data);
    row.gbt.seconds = gbt_sw.seconds();
    const std::string serialized = ml::gbt_to_json(model).dump(2);
    if (reference_model.empty()) {
      reference_model = serialized;
    } else {
      row.gbt.identical = serialized == reference_model;
      expect_identical(row.gbt.identical, threads, "serialized GBT model");
    }
    if (smoke) {
      // Per-thread-count artifact for the in-job byte comparison.
      char name[64];
      std::snprintf(name, sizeof(name), "training_model_t%u.json", threads);
      std::ofstream file(name);
      file << serialized << "\n";
    }

    // Binning share of a cold fit: the BinnedMatrix build alone.
    {
      util::Stopwatch bin_sw;
      const ml::BinnedMatrix direct(aggregated.data, gbt_params.max_bins);
      row.bin_build_seconds = bin_sw.seconds();
      bench::keep_alive(static_cast<long long>(
          direct.bin(direct.rows() / 2, direct.cols() / 2)));
    }

    // Warm fits: binning served by the BinCache — the steady-state cost
    // of the retraining loop. Bytes must match the cold fit, and the
    // cache must actually have served each fit.
    constexpr int kWarmReps = 5;
    const ml::BinCache::Stats warm_start = cache.stats();
    util::Stopwatch warm_sw;
    for (int rep = 0; rep < kWarmReps; ++rep) {
      ml::GradientBoostedTrees warm(gbt_params);
      warm.fit(aggregated.data);
      if (rep == 0) {
        expect(ml::gbt_to_json(warm).dump(2) == serialized,
               "warm (cache-hit) GBT fit bytes == cold fit bytes");
      }
    }
    row.warm_seconds = warm_sw.seconds() / kWarmReps;
    expect(cache.stats().hits >= warm_start.hits + kWarmReps,
           "BinCache served every warm GBT fit");

    // Embedded seed engine on the same data: the model bytes must be
    // EQUAL — the engine rewrite is faster, not different.
    util::Stopwatch oracle_sw;
    const ml::GradientBoostedTrees oracle =
        bench_oracle::restore_oracle(aggregated.data, gbt_params);
    row.oracle_seconds = oracle_sw.seconds();
    row.oracle_identical = ml::gbt_to_json(oracle).dump(2) == serialized;
    expect(row.oracle_identical,
           "GBT model bytes == embedded seed-engine oracle bytes");

    // FP-Growth rule mining.
    util::Stopwatch fp_sw;
    const std::vector<arm::MinedRule> rules =
        arm::mine_rules(transactions, fp_params);
    row.fpgrowth.seconds = fp_sw.seconds();
    std::string rules_text;
    for (const auto& rule : rules) {
      char buffer[96];
      for (const arm::Item item : rule.antecedent) {
        std::snprintf(buffer, sizeof(buffer), "%u,", item.packed());
        rules_text += buffer;
      }
      std::snprintf(buffer, sizeof(buffer), "=>%u s=%.17g c=%.17g|",
                    rule.consequent.packed(), rule.support, rule.confidence);
      rules_text += buffer;
    }
    if (reference_rules.empty()) {
      reference_rules = rules_text;
    } else {
      row.fpgrowth.identical = rules_text == reference_rules;
      expect_identical(row.fpgrowth.identical, threads, "mined rule set");
    }

    // Grid search, fresh RNG per row so every row consumes the same
    // fold-assignment stream.
    util::Stopwatch grid_sw;
    util::Rng rng(7);
    const auto result =
        ml::grid_search(aggregated.data, grid, grid_factory, 3, rng);
    row.grid.seconds = grid_sw.seconds();
    const std::string fingerprint = grid_fingerprint(result);
    if (reference_grid.empty()) {
      reference_grid = fingerprint;
    } else {
      row.grid.identical = fingerprint == reference_grid;
      expect_identical(row.grid.identical, threads,
                       "grid-search winner/scores");
    }

    // Counter deltas across the whole row (cold + warm fits + grid
    // search; the shared grid fold set makes later configurations hit).
    const ml::BinCache::Stats cache_end = cache.stats();
    row.cache.hits = cache_end.hits - cache_start.hits;
    row.cache.misses = cache_end.misses - cache_start.misses;
    row.cache.evictions = cache_end.evictions - cache_start.evictions;
    row.cache.entries = cache_end.entries;
    expect(row.cache.hits > 0, "BinCache hits nonzero across the row");

    rows.push_back(row);
  }

  const auto base = [&](const KernelRow SweepRow::* kernel) {
    for (const SweepRow& row : rows) {
      if (row.threads == 1) return (row.*kernel).seconds;
    }
    return 0.0;
  };
  const double gbt_base = base(&SweepRow::gbt);
  const double fp_base = base(&SweepRow::fpgrowth);
  const double grid_base = base(&SweepRow::grid);

  util::TextTable table;
  table.set_header({"threads", "gbt_s", "gbt_x", "bin_s", "warm_s", "oracle_s",
                    "orc_x", "fpgrowth_s", "grid_s", "identical", "advisory"});
  util::JsonArray results;
  for (const SweepRow& row : rows) {
    const auto speedup = [](double baseline, double seconds) {
      return seconds > 0.0 ? baseline / seconds : 0.0;
    };
    const bool identical = row.gbt.identical && row.fpgrowth.identical &&
                           row.grid.identical && row.oracle_identical;
    char gbt_s[32], gbt_x[32], bin_s[32], warm_s[32], oracle_s[32], orc_x[32],
        fp_s[32], grid_s[32];
    std::snprintf(gbt_s, sizeof(gbt_s), "%.3f", row.gbt.seconds);
    std::snprintf(gbt_x, sizeof(gbt_x), "%.2f",
                  speedup(gbt_base, row.gbt.seconds));
    std::snprintf(bin_s, sizeof(bin_s), "%.3f", row.bin_build_seconds);
    std::snprintf(warm_s, sizeof(warm_s), "%.3f", row.warm_seconds);
    std::snprintf(oracle_s, sizeof(oracle_s), "%.3f", row.oracle_seconds);
    std::snprintf(orc_x, sizeof(orc_x), "%.2f",
                  speedup(row.oracle_seconds, row.warm_seconds));
    std::snprintf(fp_s, sizeof(fp_s), "%.3f", row.fpgrowth.seconds);
    std::snprintf(grid_s, sizeof(grid_s), "%.3f", row.grid.seconds);
    table.add_row({std::to_string(row.threads), gbt_s, gbt_x, bin_s, warm_s,
                   oracle_s, orc_x, fp_s, grid_s, identical ? "yes" : "NO",
                   row.advisory ? "yes" : ""});

    util::Json item;
    item.set("threads", static_cast<double>(row.threads));
    item.set("advisory", row.advisory);
    item.set("identical", identical);
    item.set("gbt_train_seconds", row.gbt.seconds);
    item.set("gbt_train_speedup", speedup(gbt_base, row.gbt.seconds));
    // Breakdown: binning share of a cold fit, steady-state warm fit, and
    // the embedded seed engine on identical data (bytes asserted equal).
    item.set("gbt_bin_build_seconds", row.bin_build_seconds);
    item.set("gbt_warm_fit_seconds", row.warm_seconds);
    item.set("gbt_oracle_seconds", row.oracle_seconds);
    item.set("gbt_cold_speedup_vs_oracle",
             speedup(row.oracle_seconds, row.gbt.seconds));
    item.set("gbt_warm_speedup_vs_oracle",
             speedup(row.oracle_seconds, row.warm_seconds));
    item.set("oracle_identical", row.oracle_identical);
    item.set("bin_cache_hits", static_cast<double>(row.cache.hits));
    item.set("bin_cache_misses", static_cast<double>(row.cache.misses));
    item.set("bin_cache_evictions", static_cast<double>(row.cache.evictions));
    item.set("fpgrowth_seconds", row.fpgrowth.seconds);
    item.set("fpgrowth_speedup", speedup(fp_base, row.fpgrowth.seconds));
    item.set("grid_search_seconds", row.grid.seconds);
    item.set("grid_search_speedup", speedup(grid_base, row.grid.seconds));
    results.push_back(std::move(item));
  }
  std::printf("%s", table.render().c_str());

  util::Json out;
  out.set("bench", "training");
  bench::set_provenance(out);
  out.set("profile", "IXP-US1");
  out.set("smoke", smoke);
  out.set("trace_minutes", static_cast<double>(kMinutes));
  out.set("seed", static_cast<double>(kSeed));
  out.set("records", static_cast<double>(aggregated.size()));
  out.set("transactions", static_cast<double>(transactions.size()));
  out.set("hardware_concurrency", static_cast<double>(hardware));
  out.set("train_threads", static_cast<double>(requested));
  out.set("results", std::move(results));
  // The smoke run is a correctness gate, not a perf record — don't
  // overwrite the trajectory file with tiny-trace numbers.
  if (!smoke) {
    std::ofstream file("BENCH_training.json");
    file << out.dump(2) << "\n";
    std::printf("\nwrote BENCH_training.json (hardware_concurrency=%u)\n",
                hardware);
  }
  if (failures != 0) {
    std::fprintf(stderr, "\n%d determinism check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("all determinism checks passed\n");
  return 0;
}
