// Figure 3c — flows per unique IP, blackholing vs benign class, per minute
// bin and site. Paper: the classes are clearly correlated (Pearson r =
// 0.77, p < 0.01), validating that the balancing procedure preserves the
// flows-per-IP distribution across classes.

#include <algorithm>

#include "../bench/common.hpp"

int main() {
  using namespace scrubber;
  bench::print_header("Figure 3c",
                      "flows/unique IP: blackholing vs benign correlation");
  bench::print_expectation("positive Pearson correlation (paper: r = 0.77)");

  util::TextTable table;
  table.set_header({"site", "minute bins", "pearson r"});

  std::vector<double> all_bh, all_benign;
  std::uint64_t seed = 99;
  for (const auto& profile : flowgen::all_ixp_profiles()) {
    const std::uint32_t minutes =
        profile.benign_flows_per_minute > 1000.0 ? 24 * 60 : 3 * 24 * 60;
    const auto trace = bench::make_balanced(profile, seed++, 0, minutes);
    std::vector<double> bh, benign;
    for (const auto& stats : trace.minutes) {
      if (stats.blackhole_unique_ips == 0 || stats.benign_selected_ips == 0)
        continue;
      bh.push_back(stats.blackhole_flows_per_ip());
      benign.push_back(stats.benign_flows_per_ip());
      all_bh.push_back(bh.back());
      all_benign.push_back(benign.back());
    }
    table.add_row({profile.name, util::fmt_count(bh.size()),
                   bh.size() > 2 ? util::fmt(util::pearson(bh, benign), 3) : "-"});
  }
  table.add_row({"ALL", util::fmt_count(all_bh.size()),
                 util::fmt(util::pearson(all_bh, all_benign), 3)});
  std::fputs(table.render().c_str(), stdout);

  // Scatter summary: mean benign flows/IP conditioned on BH flows/IP decile.
  std::printf("\nbenign flows/IP by blackhole flows/IP bucket (scatter trend):\n");
  std::vector<std::pair<double, double>> points;
  for (std::size_t i = 0; i < all_bh.size(); ++i)
    points.emplace_back(all_bh[i], all_benign[i]);
  std::sort(points.begin(), points.end());
  const std::size_t buckets = 8;
  for (std::size_t b = 0; b < buckets && !points.empty(); ++b) {
    const std::size_t lo = b * points.size() / buckets;
    const std::size_t hi = (b + 1) * points.size() / buckets;
    if (lo >= hi) continue;
    double x = 0.0, y = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      x += points[i].first;
      y += points[i].second;
    }
    x /= static_cast<double>(hi - lo);
    y /= static_cast<double>(hi - lo);
    std::printf("  bh=%7.1f  benign=%7.1f  |%s|\n", x, y,
                util::bar(y / (points.back().second + 1.0), 30).c_str());
  }
  return 0;
}
