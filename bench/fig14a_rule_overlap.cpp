// Figure 14a — overlap of XGB and RBC decisions: in how many XGB-positive
// classifications does at least one mined tagging rule match (and thus
// locally explain / directly translate into an ACL)? Paper: coherent
// decisions in 70.9% of records; among coherent positives ~30% carry one
// rule and ~50% up to three.

#include <map>

#include "../bench/common.hpp"

int main() {
  using namespace scrubber;
  bench::print_header("Figure 14a",
                      "tagging-rule annotations vs XGB classifications");
  bench::print_expectation(
      "majority of XGB-positive records carry >= 1 matching rule; most "
      "carry only a handful (1-3), keeping explanations short");

  std::vector<net::FlowRecord> flows;
  std::uint64_t seed = 1400;
  for (const auto& profile :
       {flowgen::ixp_ce1(), flowgen::ixp_us1(), flowgen::ixp_se()}) {
    const auto trace = bench::make_balanced(profile, seed++, 0, 24 * 60);
    flows.insert(flows.end(), trace.flows.begin(), trace.flows.end());
  }

  core::ScrubberConfig config;
  config.mining.min_support = 0.002;
  core::IxpScrubber scrubber(config);
  auto rules = scrubber.mine_tagging_rules(flows);
  const std::size_t accepted = bench::curate_rules(rules);
  std::printf("accepted tagging rules: %zu\n", accepted);
  scrubber.set_rules(std::move(rules));

  const auto aggregated = scrubber.aggregate(flows);
  const auto split = bench::split_23(aggregated, 3);
  scrubber.train(split.train);
  const auto predictions = scrubber.predict_all(split.test);

  std::size_t xgb_pos = 0, coherent = 0;
  std::map<std::size_t, std::size_t> rules_histogram;  // #rules -> count
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    if (predictions[i] != 1) continue;
    ++xgb_pos;
    const std::size_t tags = split.test.meta[i].rule_tags.size();
    if (tags > 0) {
      ++coherent;
      ++rules_histogram[std::min<std::size_t>(tags, 6)];
    }
  }

  std::printf("XGB-positive records: %zu\n", xgb_pos);
  std::printf("coherent (>= 1 matching rule): %zu (%s; paper: 70.9%%)\n\n",
              coherent,
              util::fmt_pct(xgb_pos ? static_cast<double>(coherent) / xgb_pos : 0.0)
                  .c_str());

  util::TextTable table;
  table.set_header({"#matching rules", "share of coherent positives", ""});
  for (const auto& [tags, count] : rules_histogram) {
    const double share = static_cast<double>(count) / static_cast<double>(coherent);
    table.add_row({(tags == 6 ? ">=6" : std::to_string(tags)),
                   util::fmt_pct(share), util::bar(share, 30)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
