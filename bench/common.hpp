#pragma once
// Shared machinery for the experiment harnesses (one binary per table /
// figure of the paper; see DESIGN.md §3). Every harness is deterministic:
// all randomness flows from fixed seeds.

#include <atomic>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/balancer.hpp"
#include "core/scrubber.hpp"
#include "flowgen/generator.hpp"
#include "ml/metrics.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace scrubber::bench {

/// Result of generating + online-balancing a traffic slice.
struct BalancedTrace {
  std::string site;
  std::vector<net::FlowRecord> flows;           ///< balanced flows
  core::BalanceTotals totals;                   ///< Table 2 numbers
  std::vector<core::MinuteBalanceStats> minutes;///< Fig 3a/3c inputs
};

/// Generates `minutes` of traffic for `profile` and balances it online.
inline BalancedTrace make_balanced(const flowgen::IxpProfile& profile,
                                   std::uint64_t seed, std::uint32_t start,
                                   std::uint32_t minutes,
                                   flowgen::TrafficGenerator::Labeling labeling =
                                       flowgen::TrafficGenerator::Labeling::
                                           kBlackholeRegistry) {
  flowgen::TrafficGenerator gen(profile, seed);
  core::Balancer balancer(seed ^ 0xBA1A);
  gen.generate_stream(start, minutes, labeling,
                      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
                        balancer.add_minute(m, f);
                      });
  BalancedTrace out;
  out.site = profile.name;
  out.minutes = balancer.minute_stats();
  out.totals = balancer.totals();
  out.flows = balancer.take_balanced();
  return out;
}

/// Standard train/test split of an aggregated dataset (2/3 - 1/3, §6.1).
struct Split {
  core::AggregatedDataset train;
  core::AggregatedDataset test;
};

inline Split split_23(const core::AggregatedDataset& data, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto [train_idx, test_idx] = data.data.split_indices(2.0 / 3.0, rng);
  return Split{data.subset(train_idx), data.subset(test_idx)};
}

/// F_beta=0.5 of predictions against dataset labels.
inline double fbeta(const core::AggregatedDataset& data,
                    const std::vector<int>& predictions) {
  return ml::evaluate(data.data.labels(), predictions).f_beta(0.5);
}

/// Operator-grade curation used by the evaluation benches: accept rules
/// with confidence >= 0.9 and >= 3 antecedent items, then decline any rule
/// that pins neither a reflector source port nor fragments (the §5.1.3
/// operators' domain knowledge). Returns the number of accepted rules.
inline std::size_t curate_rules(arm::RuleSet& rules) {
  core::accept_rules_above(rules, 0.9, 0.0, /*min_items=*/3);
  std::size_t accepted = 0;
  for (auto& rule : rules.rules()) {
    if (rule.status != arm::RuleStatus::kAccepted) continue;
    bool pinned = false;
    for (const arm::Item item : rule.rule.antecedent) {
      pinned |= item.attribute() == arm::Attribute::kSrcPort ||
                item.attribute() == arm::Attribute::kFragment;
    }
    if (pinned) {
      ++accepted;
    } else {
      rule.status = arm::RuleStatus::kDeclined;
    }
  }
  return accepted;
}

/// Optimization barrier for timing loops: keeps a computed value alive
/// without `volatile` (banned by scrubber-lint — it reads like
/// synchronization) and without perturbing the measured loop. The relaxed
/// atomic store is a couple of cycles amortized over hundreds of
/// predictions.
inline void keep_alive(long long value) noexcept {
  static std::atomic<long long> sink{0};
  sink.store(value, std::memory_order_relaxed);
}

/// Prints a section header for a reproduced table/figure.
inline void print_header(const char* experiment_id, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf("================================================================\n");
}

/// Prints the paper-vs-measured footnote used by EXPERIMENTS.md.
inline void print_expectation(const char* text) {
  std::printf("expected shape (paper): %s\n\n", text);
}

}  // namespace scrubber::bench
