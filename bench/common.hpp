#pragma once
// Shared machinery for the experiment harnesses (one binary per table /
// figure of the paper; see DESIGN.md §3). Every harness is deterministic:
// all randomness flows from fixed seeds.

#include <sys/utsname.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/balancer.hpp"
#include "core/scrubber.hpp"
#include "flowgen/generator.hpp"
#include "ml/metrics.hpp"
#include "util/json.hpp"
#include "util/simd.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace scrubber::bench {

#ifdef SCRUBBER_SOURCE_DIR
/// Commit SHA of the tree this binary benchmarks, queried from git at run
/// time so it never goes stale between configure and run. "unknown" when
/// git or the work tree is unavailable (e.g. a tarball build).
inline std::string git_sha() {
  const std::string command =
      "git -C \"" SCRUBBER_SOURCE_DIR "\" rev-parse --short=12 HEAD "
      "2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return "unknown";
  std::array<char, 64> buffer{};
  std::string out;
  if (std::fgets(buffer.data(), static_cast<int>(buffer.size()), pipe) !=
      nullptr) {
    out = buffer.data();
  }
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

/// Provenance block shared by every BENCH_*.json: which commit and which
/// build produced these numbers. A checked or sanitized build is
/// measurable but NOT comparable with the Release trajectory; trajectory
/// tooling filters on these fields.
inline void set_provenance(util::Json& out) {
  out.set("git_sha", git_sha());
  out.set("build_type", SCRUBBER_BUILD_TYPE);
  out.set("cxx_flags", SCRUBBER_CXX_FLAGS);
  out.set("compiler", SCRUBBER_COMPILER);
  out.set("checked", SCRUBBER_OPT_CHECKED != 0);
  out.set("sanitize", SCRUBBER_OPT_SANITIZE);
  // Machine provenance: core count bounds every parallelism claim (rows
  // with shards > cores are advisory) and the kernel version pins syscall
  // behavior the netio benches depend on (recvmmsg, io_uring, SO_RXQ_OVFL).
  out.set("hardware_concurrency",
          static_cast<double>(std::max(1u, std::thread::hardware_concurrency())));
  utsname kernel{};
  out.set("kernel", ::uname(&kernel) == 0
                        ? std::string(kernel.sysname) + " " + kernel.release
                        : "unknown");
  // CPU/SIMD provenance: inference numbers from a scalar-dispatch run
  // (old CPU, or a SCRUBBER_AVX2=OFF build) must never be compared
  // against vector-kernel rows, and trajectory tooling needs to see
  // which case this was. cpu_* report the machine, simd_compiled_avx2
  // the build, simd_level what actually dispatched.
  out.set("cpu_avx2", util::cpu_has_avx2());
  out.set("cpu_fma", util::cpu_has_fma());
  out.set("simd_compiled_avx2", util::simd_compiled_avx2());
  out.set("simd_level", util::simd_level_name(util::simd_level()));
}
#endif  // SCRUBBER_SOURCE_DIR

/// Parses `--train-threads N` / `--train-threads=N` (0 or absent means
/// hardware_concurrency), configures the shared learning-plane pool, and
/// returns the effective thread count. Training-heavy benches call this
/// before any fit/mine work and record the result in their JSON output.
inline unsigned configure_train_threads(int argc, char** argv) {
  unsigned requested = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--train-threads=", 16) == 0) {
      requested = static_cast<unsigned>(std::strtoul(arg + 16, nullptr, 10));
    } else if (std::strcmp(arg, "--train-threads") == 0 && i + 1 < argc) {
      requested = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  return util::set_training_threads(requested);
}

/// Result of generating + online-balancing a traffic slice.
struct BalancedTrace {
  std::string site;
  std::vector<net::FlowRecord> flows;           ///< balanced flows
  core::BalanceTotals totals;                   ///< Table 2 numbers
  std::vector<core::MinuteBalanceStats> minutes;///< Fig 3a/3c inputs
};

/// Generates `minutes` of traffic for `profile` and balances it online.
inline BalancedTrace make_balanced(const flowgen::IxpProfile& profile,
                                   std::uint64_t seed, std::uint32_t start,
                                   std::uint32_t minutes,
                                   flowgen::TrafficGenerator::Labeling labeling =
                                       flowgen::TrafficGenerator::Labeling::
                                           kBlackholeRegistry) {
  flowgen::TrafficGenerator gen(profile, seed);
  core::Balancer balancer(seed ^ 0xBA1A);
  gen.generate_stream(start, minutes, labeling,
                      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
                        balancer.add_minute(m, f);
                      });
  BalancedTrace out;
  out.site = profile.name;
  out.minutes = balancer.minute_stats();
  out.totals = balancer.totals();
  out.flows = balancer.take_balanced();
  return out;
}

/// Standard train/test split of an aggregated dataset (2/3 - 1/3, §6.1).
struct Split {
  core::AggregatedDataset train;
  core::AggregatedDataset test;
};

inline Split split_23(const core::AggregatedDataset& data, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto [train_idx, test_idx] = data.data.split_indices(2.0 / 3.0, rng);
  return Split{data.subset(train_idx), data.subset(test_idx)};
}

/// F_beta=0.5 of predictions against dataset labels.
inline double fbeta(const core::AggregatedDataset& data,
                    const std::vector<int>& predictions) {
  return ml::evaluate(data.data.labels(), predictions).f_beta(0.5);
}

/// Operator-grade curation used by the evaluation benches: accept rules
/// with confidence >= 0.9 and >= 3 antecedent items, then decline any rule
/// that pins neither a reflector source port nor fragments (the §5.1.3
/// operators' domain knowledge). Returns the number of accepted rules.
inline std::size_t curate_rules(arm::RuleSet& rules) {
  core::accept_rules_above(rules, 0.9, 0.0, /*min_items=*/3);
  std::size_t accepted = 0;
  for (auto& rule : rules.rules()) {
    if (rule.status != arm::RuleStatus::kAccepted) continue;
    bool pinned = false;
    for (const arm::Item item : rule.rule.antecedent) {
      pinned |= item.attribute() == arm::Attribute::kSrcPort ||
                item.attribute() == arm::Attribute::kFragment;
    }
    if (pinned) {
      ++accepted;
    } else {
      rule.status = arm::RuleStatus::kDeclined;
    }
  }
  return accepted;
}

/// Minimum wall-clock seconds of `fn()` across `repeats` runs — the
/// standard noise filter for the perf-trajectory benches. The minimum
/// (not the mean) is the run least disturbed by the machine, which is
/// the quantity a speedup bar should be computed from.
template <typename Fn>
inline double min_seconds_of(int repeats, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeats || r == 0; ++r) {
    util::Stopwatch sw;
    fn();
    const double seconds = sw.seconds();
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

/// Optimization barrier for timing loops: keeps a computed value alive
/// without `volatile` (banned by scrubber-lint — it reads like
/// synchronization) and without perturbing the measured loop. The relaxed
/// atomic store is a couple of cycles amortized over hundreds of
/// predictions.
inline void keep_alive(long long value) noexcept {
  static std::atomic<long long> sink{0};
  sink.store(value, std::memory_order_relaxed);
}

/// Prints a section header for a reproduced table/figure.
inline void print_header(const char* experiment_id, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf("================================================================\n");
}

/// Prints the paper-vs-measured footnote used by EXPERIMENTS.md.
inline void print_expectation(const char* text) {
  std::printf("expected shape (paper): %s\n\n", text);
}

}  // namespace scrubber::bench
