// Tables 3 and 5 — classification results of all models on the merged
// five-IXP ML training set (random 2/3 train / 1/3 test split): F_beta=0.5,
// F1, mcc (mega clock cycles per prediction), tnr/fnr/tpr/fpr, per-vector
// F_beta for the top-7 attack vectors, and F_beta of the ML-set-trained
// models applied to the self-attack set (SAS). Plus the RBC and DUM
// baselines.
//
// Expected shape (paper): XGB best overall (F_beta ~0.99) at modest mcc;
// LSVM/NN/NB-G competitive on the split but NN and NB-G collapse on SAS;
// DT slightly behind; NB-C/NB-M/NB-B clearly worse (NB-B worst); RBC a
// strong interpretable baseline on SAS (~0.92); DUM ~0.5.

#include <map>

#include "../bench/common.hpp"

namespace {

using namespace scrubber;

constexpr std::uint32_t kDay = 24 * 60;

/// F_beta over the records whose dominant vector is `vector` — "among
/// traffic that looks like this vector, does the model separate attack
/// from benign?" (the per-vector columns of Table 3). Returns -1 when the
/// subset is too thin to be meaningful.
double per_vector_fbeta(const core::AggregatedDataset& data,
                        const std::vector<int>& predictions,
                        net::DdosVector vector) {
  ml::ConfusionMatrix cm;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto& meta = data.meta[i];
    if (meta.dominant_vector.has_value() && *meta.dominant_vector == vector)
      cm.add(data.data.label(i), predictions[i]);
  }
  if (cm.tp + cm.fn < 5) return -1.0;
  return cm.f_beta(0.5);
}

/// Mega clock cycles per prediction, averaged over repeated passes.
double measure_mcc(const ml::Pipeline& pipeline,
                   const core::AggregatedDataset& data) {
  const std::size_t sample = std::min<std::size_t>(data.size(), 400);
  const int repeats = 5;
  util::CycleTimer timer;
  long long sink = 0;
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t i = 0; i < sample; ++i)
      sink += pipeline.predict(data.data.row(i));
  }
  bench::keep_alive(sink);
  return timer.mega_cycles() / static_cast<double>(sample * repeats);
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned train_threads = bench::configure_train_threads(argc, argv);
  bench::print_header("Table 3 / Table 5",
                      "classification results, all models, merged 5-IXP set");
  bench::print_expectation(
      "XGB best F_beta at low mcc; NN/NB-G lose heavily on SAS; NB variants "
      "trail; NB-B worst; RBC ~0.9 on SAS; DUM ~0.5");

  // ----- data: merged ML set + SAS -----
  core::IxpScrubber scrubber;  // provides mining + aggregation
  std::vector<net::FlowRecord> flows;
  std::uint64_t seed = 300;
  for (const auto& profile : flowgen::all_ixp_profiles()) {
    const std::uint32_t minutes =
        profile.benign_flows_per_minute > 1000.0 ? kDay : 2 * kDay;
    const auto trace = bench::make_balanced(profile, seed++, 0, minutes);
    flows.insert(flows.end(), trace.flows.begin(), trace.flows.end());
  }
  auto rules = scrubber.mine_tagging_rules(flows);
  bench::curate_rules(rules);
  scrubber.set_rules(std::move(rules));

  const auto aggregated = scrubber.aggregate(flows);
  const auto split = bench::split_23(aggregated, 5);
  std::printf("records: train %zu, test %zu (positives: %zu / %zu)\n",
              split.train.size(), split.test.size(),
              split.train.data.positive_count(),
              split.test.data.positive_count());

  const auto sas_trace = bench::make_balanced(
      flowgen::self_attack_profile(), 999, 0, 2 * kDay,
      flowgen::TrafficGenerator::Labeling::kGroundTruth);
  const auto sas = scrubber.aggregate(sas_trace.flows);
  std::printf("SAS records: %zu (positives %zu)\n\n", sas.size(),
              sas.data.positive_count());

  // ----- evaluate all models -----
  util::TextTable table;
  std::vector<std::string> header{"model", "Fb0.5", "F1",  "mcc", "tnr",
                                  "fnr",   "tpr",   "fpr"};
  for (const auto v : net::top7_vectors())
    header.push_back(std::string(net::vector_name(v)));
  header.push_back("Fb(SAS)");
  table.set_header(header);

  for (const ml::ModelKind kind : ml::all_model_kinds()) {
    ml::Pipeline pipeline = ml::make_model_pipeline(kind);
    pipeline.fit(split.train.data);
    const auto predictions = pipeline.predict_all(split.test.data);
    const auto cm = ml::evaluate(split.test.data.labels(), predictions);
    const double mcc = measure_mcc(pipeline, split.test);
    const auto sas_predictions = pipeline.predict_all(sas.data);
    const auto sas_cm = ml::evaluate(sas.data.labels(), sas_predictions);

    std::vector<std::string> row{std::string(ml::model_kind_name(kind)),
                                 util::fmt(cm.f_beta(0.5)), util::fmt(cm.f1()),
                                 util::fmt(mcc),          util::fmt(cm.tnr()),
                                 util::fmt(cm.fnr()),     util::fmt(cm.tpr()),
                                 util::fmt(cm.fpr())};
    if (kind == ml::ModelKind::kDummy) {
      for (std::size_t i = 0; i < net::top7_vectors().size(); ++i)
        row.push_back("-");
    } else {
      for (const auto v : net::top7_vectors()) {
        const double score = per_vector_fbeta(split.test, predictions, v);
        row.push_back(score < 0.0 ? "-" : util::fmt(score));
      }
    }
    row.push_back(util::fmt(sas_cm.f_beta(0.5)));
    table.add_row(row);
  }

  // RBC baseline: only valid on SAS (rules were mined on the ML set; using
  // them on the same data would leak, exactly as the paper notes).
  {
    const auto rbc = core::rbc_predict(sas);
    const auto cm = ml::evaluate(sas.data.labels(), rbc);
    std::vector<std::string> row{"RBC", "-", "-", "-", util::fmt(cm.tnr()),
                                 util::fmt(cm.fnr()), util::fmt(cm.tpr()),
                                 util::fmt(cm.fpr())};
    for (std::size_t i = 0; i < net::top7_vectors().size(); ++i)
      row.push_back("-");
    row.push_back(util::fmt(cm.f_beta(0.5)));
    table.add_row(row);
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nnote: mcc measured on this host; cross-model ordering (tree models "
      "cheap, NN/PCA heavier) is the comparable quantity, not absolute "
      "values.\n");

  // Machine-readable run metadata (the tables above are the human view).
  util::Json meta;
  meta.set("bench", "table3_models");
  bench::set_provenance(meta);
  meta.set("train_threads", static_cast<double>(train_threads));
  std::printf("\n%s\n", meta.dump().c_str());
  return 0;
}
