// Figure 14b — WoE distributions of the top XGB features for true-positive
// vs false-positive classifications. Paper: false positives sit at clearly
// lower WoE (often 0 = unknown source), which is what lets operators
// mitigate them by pinning feature WoEs (whitelisting).

#include "../bench/common.hpp"

#include "ml/gbt.hpp"
#include "ml/woe.hpp"

int main() {
  using namespace scrubber;
  bench::print_header("Figure 14b",
                      "WoE distributions of top XGB features: TP vs FP");
  bench::print_expectation(
      "false positives concentrate at lower / neutral WoE than true "
      "positives on the top features");

  std::vector<net::FlowRecord> flows;
  std::uint64_t seed = 1450;
  for (const auto& profile : {flowgen::ixp_ce1(), flowgen::ixp_us1()}) {
    const auto trace = bench::make_balanced(profile, seed++, 0, 36 * 60);
    flows.insert(flows.end(), trace.flows.begin(), trace.flows.end());
  }
  core::IxpScrubber scrubber;
  scrubber.set_rules(arm::RuleSet{});
  const auto aggregated = scrubber.aggregate(flows);
  const auto split = bench::split_23(aggregated, 7);
  scrubber.train(split.train);

  // Top-4 encoded features by XGB gain.
  const auto& gbt = dynamic_cast<const ml::GradientBoostedTrees&>(
      scrubber.pipeline().classifier());
  const auto* stage = scrubber.pipeline().find_stage("WoE");
  const auto& encoder = static_cast<const ml::WoeEncoder&>(*stage);
  std::vector<std::size_t> top_features;
  for (const auto& g : gbt.gain_importance()) {
    if (encoder.encodes(g.feature)) top_features.push_back(g.feature);
    if (top_features.size() == 4) break;
  }

  const auto predictions = scrubber.predict_all(split.test);
  util::TextTable table;
  table.set_header({"feature", "class", "n", "p10", "p50", "p90", "WoE=0 share"});
  for (const std::size_t feature : top_features) {
    for (const bool want_tp : {true, false}) {
      std::vector<double> woes;
      std::size_t zeros = 0;
      for (std::size_t i = 0; i < split.test.size(); ++i) {
        const bool is_tp = predictions[i] == 1 && split.test.data.label(i) == 1;
        const bool is_fp = predictions[i] == 1 && split.test.data.label(i) == 0;
        if ((want_tp && !is_tp) || (!want_tp && !is_fp)) continue;
        const double raw = split.test.data.at(i, feature);
        const double woe =
            ml::is_missing(raw)
                ? 0.0
                : encoder.column(feature).encode(
                      static_cast<std::int64_t>(std::llround(raw)));
        woes.push_back(woe);
        zeros += (woe == 0.0);
      }
      if (woes.empty()) {
        table.add_row({split.test.data.column(feature).name,
                       want_tp ? "TP" : "FP", "0", "-", "-", "-", "-"});
        continue;
      }
      table.add_row({split.test.data.column(feature).name,
                     want_tp ? "TP" : "FP", util::fmt_count(woes.size()),
                     util::fmt(util::quantile(woes, 0.1), 2),
                     util::fmt(util::quantile(woes, 0.5), 2),
                     util::fmt(util::quantile(woes, 0.9), 2),
                     util::fmt_pct(static_cast<double>(zeros) / woes.size())});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
