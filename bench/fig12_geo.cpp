// Figure 12 — geographic model drift. Left: naive transfer of whole
// trained models between IXPs (train site = row, test site = column);
// performance collapses off-diagonal. Middle: overlap of reflector IPs
// (WoE > 1.0) between sites is near zero. Right: transferring only the
// classifier while keeping the *local* WoE encoding recovers > 0.98.
//
// This doubles as the WoE ablation: the delta between the left and right
// heatmaps is exactly the value of separating local knowledge (WoE) from
// the classifier.

#include <unordered_set>

#include "../bench/common.hpp"

#include "ml/woe.hpp"

namespace {

using namespace scrubber;

constexpr std::uint32_t kDay = 24 * 60;

struct Site {
  std::string name;
  core::AggregatedDataset train;
  core::AggregatedDataset test;
  ml::Pipeline pipeline;  // fitted on train (local WoE + local classifier)
};

Site make_site(const flowgen::IxpProfile& profile, std::uint64_t seed) {
  // The rarely-attacked small sites need a longer horizon before their
  // test split carries enough positives to score at all.
  const std::uint32_t minutes = profile.benign_flows_per_minute > 1000.0
                                    ? kDay
                                    : (profile.attacks_per_day < 5.0 ? 14 * kDay
                                                                     : 3 * kDay);
  const auto trace = bench::make_balanced(profile, seed, 0, minutes);
  const core::Aggregator aggregator;
  const auto aggregated = aggregator.aggregate(trace.flows);
  auto split = bench::split_23(aggregated, seed ^ 0x5u);
  Site site{profile.name, std::move(split.train), std::move(split.test),
            ml::make_model_pipeline(ml::ModelKind::kXgb)};
  site.pipeline.fit(site.train.data);
  return site;
}

}  // namespace

int main() {
  bench::print_header("Figure 12", "geographic model drift across IXPs");
  bench::print_expectation(
      "diagonal (local) ~0.97+; naive off-diagonal transfers degrade; "
      "reflector-IP WoE overlap between sites ~0; classifier-only transfer "
      "with local WoE recovers to ~0.98 except between the smallest sites");

  std::vector<Site> sites;
  std::uint64_t seed = 1212;
  for (const auto& profile : flowgen::all_ixp_profiles())
    sites.push_back(make_site(profile, seed++));

  // "ALL" training row: one model over the union of every site's train set.
  Site all_site{"ALL", sites[0].train, sites[0].test,
                ml::make_model_pipeline(ml::ModelKind::kXgb)};
  for (std::size_t s = 1; s < sites.size(); ++s)
    all_site.train.append(sites[s].train);
  all_site.pipeline.fit(all_site.train.data);

  std::vector<const Site*> trainers{&all_site};
  for (const auto& site : sites) trainers.push_back(&site);

  // ----- left: transfer the whole model (foreign WoE + foreign classifier).
  std::printf("(left) naive model transfer, F_beta=0.5 (rows: trained at):\n");
  util::TextTable left;
  std::vector<std::string> header{"train \\ test"};
  for (const auto& site : sites) header.push_back(site.name);
  left.set_header(header);
  for (const Site* trainer_ptr : trainers) {
    const Site& trainer = *trainer_ptr;
    std::vector<std::string> row{trainer.name};
    for (const auto& tester : sites) {
      const auto predictions = trainer.pipeline.predict_all(tester.test.data);
      row.push_back(util::fmt(bench::fbeta(tester.test, predictions)));
    }
    left.add_row(row);
  }
  std::fputs(left.render().c_str(), stdout);

  // ----- middle: overlap of reflector IPs with WoE > 1.0 between sites.
  std::printf("\n(middle) overlap of source IPs with WoE > 1.0 (reflectors):\n");
  const std::size_t src_ip_col = 0;  // "src_ip/pktsize/0" is column 0
  std::vector<std::unordered_set<std::int64_t>> reflectors;
  for (auto& site : sites) {
    const auto* stage = site.pipeline.find_stage("WoE");
    const auto& encoder = static_cast<const ml::WoeEncoder&>(*stage);
    std::unordered_set<std::int64_t> set;
    // Union over all src_ip ranking columns of this site's encoder.
    for (const std::size_t col : encoder.encoded_columns()) {
      if (site.train.data.column(col).name.rfind("src_ip/", 0) != 0) continue;
      for (const auto v : encoder.column(col).values_above(1.0)) set.insert(v);
    }
    (void)src_ip_col;
    reflectors.push_back(std::move(set));
  }
  util::TextTable middle;
  middle.set_header(header);
  for (std::size_t a = 0; a < sites.size(); ++a) {
    std::vector<std::string> row{sites[a].name};
    for (std::size_t b = 0; b < sites.size(); ++b) {
      if (a == b) {
        row.push_back(util::fmt_count(reflectors[a].size()));
        continue;
      }
      std::size_t overlap = 0;
      for (const auto v : reflectors[b]) overlap += reflectors[a].count(v);
      const std::size_t denom = std::min(reflectors[a].size(), reflectors[b].size());
      row.push_back(denom == 0 ? "-" : util::fmt_pct(static_cast<double>(overlap) /
                                                     static_cast<double>(denom), 1));
    }
    middle.add_row(row);
  }
  std::printf("%s(diagonal: pool size; off-diagonal: overlap %% of smaller pool)\n",
              middle.render().c_str());

  // ----- right: transfer classifier only, keep local WoE.
  std::printf("\n(right) classifier transfer with local WoE encoding:\n");
  util::TextTable right;
  right.set_header(header);
  for (const Site* trainer_ptr : trainers) {
    const Site& trainer = *trainer_ptr;
    std::vector<std::string> row{trainer.name};
    for (const auto& tester : sites) {
      // Local preprocessing (tester's pipeline stages), foreign classifier.
      ml::Pipeline local = tester.pipeline.clone();
      local.swap_classifier(trainer.pipeline.classifier().clone());
      const auto predictions = local.predict_all(tester.test.data);
      row.push_back(util::fmt(bench::fbeta(tester.test, predictions)));
    }
    right.add_row(row);
  }
  std::fputs(right.render().c_str(), stdout);
  return 0;
}
