// §5.1.1 — Rule mining pipeline counts: FP-Growth at min confidence 0.8
// produces a large raw rule set; dropping non-{blackhole} consequents and
// Algorithm 1 minimization (L_c = L_s = 0.01) shrink it to a curatable
// size. Paper: 7,859 -> 1,469 -> 367 on the full dataset; the reproducible
// claim is the successive order-of-magnitude reduction.

#include "../bench/common.hpp"

#include "core/acl.hpp"

int main(int argc, char** argv) {
  using namespace scrubber;
  const unsigned train_threads = bench::configure_train_threads(argc, argv);
  bench::print_header("Rule mining (§5.1.1)",
                      "FP-Growth -> consequent filter -> Algorithm 1");
  bench::print_expectation(
      "mined >> blackhole-consequent >> minimized (paper: 7859 -> 1469 -> "
      "367); minimization terminates in seconds");

  // Merge two days from the three largest IXPs for a richer rule pool.
  std::vector<net::FlowRecord> flows;
  std::uint64_t seed = 7000;
  for (const auto& profile :
       {flowgen::ixp_ce1(), flowgen::ixp_us1(), flowgen::ixp_se()}) {
    const auto trace = bench::make_balanced(profile, seed++, 0, 24 * 60);
    flows.insert(flows.end(), trace.flows.begin(), trace.flows.end());
  }

  core::ScrubberConfig config;
  config.mining.min_support = 0.002;  // surface rarer vectors too
  core::IxpScrubber scrubber(config);

  util::Stopwatch sw;
  std::array<std::size_t, 3> counts{};
  auto rules = scrubber.mine_tagging_rules(flows, &counts);
  const double elapsed = sw.seconds();

  util::TextTable table;
  table.set_header({"stage", "#rules"});
  table.add_row({"mined (FP-Growth, conf >= 0.8)", util::fmt_count(counts[0])});
  table.add_row({"consequent == {blackhole}", util::fmt_count(counts[1])});
  table.add_row({"after Algorithm 1 (Lc=Ls=0.01)", util::fmt_count(counts[2])});
  std::fputs(table.render().c_str(), stdout);
  std::printf("mining + minimization wall time: %.2f s (paper: < 60 s)\n",
              elapsed);

  // Show the operator's view of the top rules (Figure 6 columns).
  std::printf("\ntop minimized rules by antecedent support (operator UI view):\n");
  auto& list = rules.rules();
  std::sort(list.begin(), list.end(), [](const auto& a, const auto& b) {
    return a.rule.support > b.rule.support;
  });
  util::TextTable ui;
  ui.set_header({"id", "antecedent", "confidence", "support"});
  for (std::size_t i = 0; i < list.size() && i < 12; ++i) {
    ui.add_row({list[i].id, list[i].antecedent_string(),
                util::fmt(list[i].rule.confidence, 5),
                util::fmt(list[i].rule.support, 5)});
  }
  std::fputs(ui.render().c_str(), stdout);

  core::accept_rules_above(rules, 0.9);
  std::printf("\ngenerated ACL from accepted rules (first lines):\n");
  const std::string acl = core::generate_acl(rules);
  std::size_t lines = 0;
  for (std::size_t pos = 0; pos < acl.size() && lines < 8; ++lines) {
    const std::size_t next = acl.find('\n', pos);
    std::printf("  %s\n", acl.substr(pos, next - pos).c_str());
    pos = next + 1;
  }

  // Machine-readable run metadata (the tables above are the human view).
  util::Json meta;
  meta.set("bench", "rules_minimization");
  bench::set_provenance(meta);
  meta.set("train_threads", static_cast<double>(train_threads));
  std::printf("\n%s\n", meta.dump().c_str());
  return 0;
}
