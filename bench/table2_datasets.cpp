// Table 2 — Dataset overview: per-IXP flow records before/after balancing,
// blackhole flow share (~50%), and the balanced/unbalanced reduction ratio
// (paper: <= 0.03%, i.e. >= 99.6% reduction). The SAS row is generated with
// the ground-truth labeling mode.
//
// Volumes are scaled ~1:300 against the paper (simulated substrate); the
// reproducible claims are the ordering of the IXPs, the ~50% class balance,
// and the magnitude of the data reduction.

#include "../bench/common.hpp"

namespace {

constexpr std::uint32_t kDay = 24 * 60;

}  // namespace

int main() {
  using namespace scrubber;
  bench::print_header("Table 2", "dataset overview across five IXPs + SAS");
  bench::print_expectation(
      "CE1 >> US1 > SE > US2 > CE2 in volume; blackhole share ~48-55%; "
      "flows balanced/unbalanced well below 10% (paper: <=0.03% at 1:1 scale)");

  util::TextTable table;
  table.set_header({"site", "raw flows", "balanced", "BH share", "balanced/raw"});

  const auto add_row = [&](const bench::BalancedTrace& trace) {
    table.add_row({trace.site, util::fmt_count(trace.totals.raw_flows),
                   util::fmt_count(trace.totals.balanced_flows),
                   util::fmt_pct(trace.totals.blackhole_share()),
                   util::fmt_pct(trace.totals.reduction_ratio(), 4)});
  };

  std::uint64_t seed = 42;
  for (const auto& profile : flowgen::all_ixp_profiles()) {
    // CE1 is big: one day suffices; the rarely-blackholed small sites need
    // a week before their rows carry any blackholed attack at all.
    const std::uint32_t minutes = profile.benign_flows_per_minute > 1000.0
                                      ? kDay
                                      : (profile.attacks_per_day < 5.0
                                             ? 14 * kDay
                                             : 3 * kDay);
    add_row(bench::make_balanced(profile, seed++, 0, minutes));
  }
  // SAS row: ground-truth labeled self attacks (§4.1).
  add_row(bench::make_balanced(
      flowgen::self_attack_profile(), seed++, 0, 9 * kDay / 9,
      flowgen::TrafficGenerator::Labeling::kGroundTruth));

  std::fputs(table.render().c_str(), stdout);
  return 0;
}
