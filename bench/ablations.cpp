// Ablations of the design choices DESIGN.md §5 calls out:
//
//  (1) WoE encoding vs alternatives — categorical columns encoded as
//      (a) WoE with out-of-fold cross-fitting (this repo's default),
//      (b) WoE fitted in-sample (the naive variant),
//      (c) raw categorical codes (no encoding),
//      (d) categoricals dropped entirely.
//      Scored on a held-out split of the same site AND on a different IXP
//      (transfer column) — the paper's §6.4 claim is that WoE carries the
//      local knowledge, so raw codes should fall hardest on transfer.
//
//  (2) Balancing vs raw training — the same XGB trained on (a) the
//      balanced set and (b) an unbalanced sample of raw traffic with the
//      same record budget, evaluated on a balanced test set (§3's
//      motivation for the balancing procedure).

#include "../bench/common.hpp"

#include "ml/gbt.hpp"
#include "ml/preprocess.hpp"
#include "ml/woe.hpp"

namespace {

using namespace scrubber;

constexpr std::uint32_t kDay = 24 * 60;

enum class Encoding { kWoeCrossFit, kWoeInSample, kRawCodes, kDropCategoricals };

const char* encoding_name(Encoding e) {
  switch (e) {
    case Encoding::kWoeCrossFit: return "WoE (cross-fit)";
    case Encoding::kWoeInSample: return "WoE (in-sample)";
    case Encoding::kRawCodes: return "raw codes";
    case Encoding::kDropCategoricals: return "drop categoricals";
  }
  return "?";
}

/// Zeroes every categorical column (the "drop" variant).
class DropCategoricals final : public ml::Transformer {
 public:
  void fit(const ml::Dataset& data) override {
    categorical_.clear();
    for (std::size_t j = 0; j < data.n_cols(); ++j) {
      if (data.column(j).kind == ml::ColumnKind::kCategorical)
        categorical_.push_back(j);
    }
  }
  void apply(std::span<double> row) const override {
    for (const std::size_t j : categorical_) {
      if (j < row.size()) row[j] = 0.0;
    }
  }
  [[nodiscard]] std::string name() const override { return "DROP"; }
  [[nodiscard]] std::unique_ptr<Transformer> clone() const override {
    return std::make_unique<DropCategoricals>(*this);
  }

 private:
  std::vector<std::size_t> categorical_;
};

ml::Pipeline make_pipeline(Encoding encoding) {
  ml::Pipeline p;
  p.add(std::make_unique<ml::FeatureReducer>());
  p.add(std::make_unique<ml::Imputer>(-1.0));
  switch (encoding) {
    case Encoding::kWoeCrossFit:
      p.add(std::make_unique<ml::WoeEncoder>(5));
      break;
    case Encoding::kWoeInSample:
      p.add(std::make_unique<ml::WoeEncoder>(0));
      break;
    case Encoding::kRawCodes:
      break;  // classifier sees raw categorical values
    case Encoding::kDropCategoricals:
      p.add(std::make_unique<DropCategoricals>());
      break;
  }
  p.set_classifier(std::make_unique<ml::GradientBoostedTrees>());
  return p;
}

}  // namespace

int main() {
  bench::print_header("Ablations", "WoE encoding variants; balancing");
  bench::print_expectation(
      "in-sample WoE memorizes row identities and collapses out of "
      "distribution — cross-fitting repairs it; raw codes stay competitive "
      "here because the port-number signal is global (WoE's further "
      "benefits — bounded memory, long-term reflector knowledge, local "
      "explainability — are outside this metric); dropping categoricals "
      "costs accuracy; training on unbalanced raw data collapses recall");

  // Shared data: two days at IXP-US1 (local) and IXP-SE (transfer target).
  const auto local_trace = bench::make_balanced(flowgen::ixp_us1(), 9101, 0, 2 * kDay);
  const auto remote_trace = bench::make_balanced(flowgen::ixp_se(), 9102, 0, 2 * kDay);
  const core::Aggregator aggregator;
  const auto local_agg = aggregator.aggregate(local_trace.flows);
  const auto remote_agg = aggregator.aggregate(remote_trace.flows);
  const auto split = bench::split_23(local_agg, 11);

  // ---------- (1) encoding ablation ----------
  std::printf("(1) categorical encoding ablation (XGB):\n");
  util::TextTable encoding_table;
  encoding_table.set_header(
      {"encoding", "local Fb0.5", "local AUC", "transfer Fb0.5 (IXP-SE)"});
  for (const Encoding encoding :
       {Encoding::kWoeCrossFit, Encoding::kWoeInSample, Encoding::kRawCodes,
        Encoding::kDropCategoricals}) {
    ml::Pipeline pipeline = make_pipeline(encoding);
    pipeline.fit(split.train.data);

    const auto local_pred = pipeline.predict_all(split.test.data);
    std::vector<double> scores;
    scores.reserve(split.test.size());
    for (std::size_t i = 0; i < split.test.size(); ++i)
      scores.push_back(pipeline.score(split.test.data.row(i)));
    const double auc = ml::roc_auc(split.test.data.labels(), scores);

    const auto remote_pred = pipeline.predict_all(remote_agg.data);
    encoding_table.add_row({encoding_name(encoding),
                            util::fmt(bench::fbeta(split.test, local_pred)),
                            util::fmt(auc),
                            util::fmt(bench::fbeta(remote_agg, remote_pred))});
  }
  std::fputs(encoding_table.render().c_str(), stdout);

  // ---------- (2) balancing ablation ----------
  std::printf("\n(2) balanced vs raw (unbalanced) training data:\n");
  // Raw sample: aggregate one hour of *unbalanced* traffic minute by
  // minute; positives are the naturally rare blackholed targets.
  flowgen::TrafficGenerator raw_gen(flowgen::ixp_us1(), 9101);
  core::AggregatedDataset raw_agg;
  bool first = true;
  raw_gen.generate_stream(
      0, 8 * 60, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t, std::span<const net::FlowRecord> flows) {
        auto minute_agg = aggregator.aggregate(flows);
        if (first) {
          raw_agg = std::move(minute_agg);
          first = false;
        } else {
          raw_agg.append(minute_agg);
        }
      });
  // Same record budget as the balanced training set.
  util::Rng rng(13);
  std::vector<std::size_t> all(raw_agg.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  rng.shuffle(all);
  all.resize(std::min(all.size(), split.train.size()));
  const auto raw_train = raw_agg.subset(all);

  util::TextTable balance_table;
  balance_table.set_header({"training data", "records", "positives", "Fb0.5",
                            "tpr", "fpr"});
  for (const auto& [label, train] :
       {std::pair<const char*, const core::AggregatedDataset*>{"balanced",
                                                               &split.train},
        {"raw (unbalanced)", &raw_train}}) {
    ml::Pipeline pipeline = ml::make_model_pipeline(ml::ModelKind::kXgb);
    pipeline.fit(train->data);
    const auto pred = pipeline.predict_all(split.test.data);
    const auto cm = ml::evaluate(split.test.data.labels(), pred);
    balance_table.add_row({label, util::fmt_count(train->size()),
                           util::fmt_count(train->data.positive_count()),
                           util::fmt(cm.f_beta(0.5)), util::fmt(cm.tpr()),
                           util::fmt(cm.fpr())});
  }
  std::fputs(balance_table.render().c_str(), stdout);
  return 0;
}
