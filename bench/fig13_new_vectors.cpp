// Figure 13 — learning new DDoS vectors without operator intervention
// (two-year IXP-SE style trace). Top: the WoE of a vector's signature
// (protocol + source port) rises once members start blackholing it; HTTP
// stays negative throughout. Bottom: XGB trained incrementally (one more
// week per iteration) improves its per-vector F_beta on a fixed late test
// set as the vector's WoE grows.
//
// Scaled substrate: 52 simulated weeks; onsets SNMP=W10, SSDP=W14,
// memcached=W40 (profile ixp_se_longitudinal, scaled from the paper's
// two-year horizon).

#include "../bench/common.hpp"

#include "ml/woe.hpp"

namespace {

using namespace scrubber;

constexpr std::uint32_t kDay = 24 * 60;
constexpr std::uint32_t kWeek = 7 * kDay;
constexpr std::uint32_t kWeeks = 52;

/// WoE of (protocol=17, src_port=port) in the balanced flows of one week,
/// computed directly from flow counts (the flow-level analogue the paper
/// plots). +1-smoothed like WoeColumn.
double port_woe(const std::vector<net::FlowRecord>& flows, std::uint16_t port,
                std::uint8_t protocol = 17) {
  std::uint64_t pos = 0, neg = 0, tot_pos = 0, tot_neg = 0;
  for (const auto& flow : flows) {
    const bool match = flow.protocol == protocol && flow.src_port == port;
    if (flow.blackholed) {
      ++tot_pos;
      pos += match;
    } else {
      ++tot_neg;
      neg += match;
    }
  }
  const double p1 = (static_cast<double>(pos) + 1.0) /
                    (static_cast<double>(tot_pos) + 1.0);
  const double p0 = (static_cast<double>(neg) + 1.0) /
                    (static_cast<double>(tot_neg) + 1.0);
  return std::log(p1 / p0);
}

double per_vector_fbeta(const core::AggregatedDataset& data,
                        const std::vector<int>& predictions,
                        net::DdosVector vector) {
  ml::ConfusionMatrix cm;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const bool in_scope = data.data.label(i) == 0 ||
                          (data.meta[i].dominant_vector.has_value() &&
                           *data.meta[i].dominant_vector == vector);
    if (in_scope) cm.add(data.data.label(i), predictions[i]);
  }
  return cm.f_beta(0.5);
}

}  // namespace

int main() {
  bench::print_header("Figure 13",
                      "IXP Scrubber learns new DDoS vectors as they appear");
  bench::print_expectation(
      "vector WoE near 0 before its onset week, strongly positive after; "
      "HTTP WoE negative throughout; incremental-training F_beta per vector "
      "rises once the vector is being blackholed");

  flowgen::IxpProfile profile = flowgen::ixp_se_longitudinal();
  profile.benign_flows_per_minute = 140.0;
  profile.attacks_per_day = 20.0;

  // Stream the full horizon once; keep per-week balanced flows.
  flowgen::TrafficGenerator gen(profile, 1313);
  std::vector<std::vector<net::FlowRecord>> weeks(kWeeks);
  {
    core::Balancer balancer(1);
    std::uint32_t week_index = 0;
    gen.generate_stream(
        0, kWeeks * kWeek, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
        [&](std::uint32_t minute, std::span<const net::FlowRecord> flows) {
          if (minute >= (week_index + 1) * kWeek) {
            weeks[week_index] = balancer.take_balanced();
            balancer = core::Balancer(2 + week_index);
            ++week_index;
          }
          balancer.add_minute(minute, flows);
        });
    weeks[kWeeks - 1] = balancer.take_balanced();
  }

  // ----- top: WoE of vector signatures over time.
  struct Tracked {
    const char* label;
    std::uint16_t port;
  };
  const Tracked tracked[] = {
      {"SNMP (udp/161)", 161},
      {"SSDP (udp/1900)", 1900},
      {"memcached (udp/11211)", 11211},
  };
  std::printf("WoE of vector signature per 4-week bucket:\n");
  util::TextTable woe_table;
  woe_table.set_header({"weeks", "SNMP", "SSDP", "memcached", "HTTP (tcp/80)"});
  for (std::uint32_t w = 0; w + 4 <= kWeeks; w += 4) {
    std::vector<net::FlowRecord> bucket;
    for (std::uint32_t k = w; k < w + 4; ++k)
      bucket.insert(bucket.end(), weeks[k].begin(), weeks[k].end());
    std::vector<std::string> row{
        "W" + std::to_string(w) + "-" + std::to_string(w + 3)};
    for (const auto& t : tracked) row.push_back(util::fmt(port_woe(bucket, t.port), 2));
    row.push_back(util::fmt(port_woe(bucket, 80, 6), 2));
    woe_table.add_row(row);
  }
  std::fputs(woe_table.render().c_str(), stdout);

  // ----- bottom: incremental training, scored on a fixed late test set.
  const core::Aggregator aggregator;
  core::AggregatedDataset test = aggregator.aggregate(weeks[46]);
  for (std::uint32_t k = 47; k < kWeeks; ++k)
    test.append(aggregator.aggregate(weeks[k]));

  std::printf("\nincremental training (cumulative weeks), per-vector F_beta on "
              "the W46-W%u test set:\n", kWeeks - 1);
  util::TextTable inc;
  inc.set_header({"trained through", "SNMP", "SSDP", "memcached", "overall"});
  core::AggregatedDataset train = aggregator.aggregate(weeks[0]);
  for (std::uint32_t w = 1; w < 46; ++w) {
    train.append(aggregator.aggregate(weeks[w]));
    if (w % 6 != 0 && w != 45) continue;  // evaluate every 6 weeks + final
    ml::Pipeline pipeline = ml::make_model_pipeline(ml::ModelKind::kXgb);
    pipeline.fit(train.data);
    const auto predictions = pipeline.predict_all(test.data);
    inc.add_row({"W" + std::to_string(w),
                 util::fmt(per_vector_fbeta(test, predictions, net::DdosVector::kSnmp)),
                 util::fmt(per_vector_fbeta(test, predictions, net::DdosVector::kSsdp)),
                 util::fmt(per_vector_fbeta(test, predictions,
                                            net::DdosVector::kMemcached)),
                 util::fmt(bench::fbeta(test, predictions))});
  }
  std::fputs(inc.render().c_str(), stdout);
  return 0;
}
