// Appendix E — attacks on IXP Scrubber itself (training-data poisoning).
//
// Two attacker goals from the paper's threat analysis, both requiring the
// attacker to rent IXP capacity and inject sustained traffic:
//
//  (i)  HIDE ATTACKS: flood the *benign* side with NTP-reflection-shaped
//       traffic to own IPs (never blackholed), dragging WoE(udp/123)
//       towards neutral so real NTP attacks stop scoring as DDoS.
//  (ii) CREATE FALSE POSITIVES: announce blackholes for own IP space and
//       fill it with HTTPS-shaped traffic, pushing WoE(tcp/443) positive
//       so legitimate web traffic gets flagged.
//
// The experiment sweeps the attacker's sustained injection rate (as a
// fraction of the IXP's benign volume) and measures the poisoned WoE and
// the end-to-end damage on clean evaluation traffic. Paper's claim: the
// required volumes are operationally prohibitive — i.e. meaningful damage
// needs injection rates comparable to the traffic the attacker wants to
// influence (for HTTP(S): terabits at a large hub).

#include "../bench/common.hpp"

#include "ml/woe.hpp"

namespace {

using namespace scrubber;

constexpr std::uint32_t kDay = 24 * 60;

/// Flow-level WoE of (protocol, src_port) in a balanced set (+1 smoothed).
double signature_woe(const std::vector<net::FlowRecord>& flows,
                     std::uint8_t protocol, std::uint16_t src_port) {
  std::uint64_t pos = 0, neg = 0, tot_pos = 0, tot_neg = 0;
  for (const auto& flow : flows) {
    const bool match = flow.protocol == protocol && flow.src_port == src_port;
    if (flow.blackholed) {
      ++tot_pos;
      pos += match;
    } else {
      ++tot_neg;
      neg += match;
    }
  }
  const double p1 = (static_cast<double>(pos) + 1.0) / (static_cast<double>(tot_pos) + 1.0);
  const double p0 = (static_cast<double>(neg) + 1.0) / (static_cast<double>(tot_neg) + 1.0);
  return std::log(p1 / p0);
}

/// Injects attacker flows into every minute of a trace (pre-balancing).
/// The attacker owns a handful of destination IPs inside one member.
std::vector<net::FlowRecord> inject(std::vector<net::FlowRecord> flows,
                                    double flows_per_minute, bool blackholed,
                                    std::uint8_t protocol, std::uint16_t src_port,
                                    double packet_size, std::uint64_t seed) {
  if (flows_per_minute <= 0.0) return flows;
  util::Rng rng(seed);
  const std::uint32_t first = flows.front().minute;
  const std::uint32_t last = flows.back().minute;
  for (std::uint32_t m = first; m <= last; ++m) {
    const auto count = rng.poisson(flows_per_minute);
    for (std::uint64_t k = 0; k < count; ++k) {
      net::FlowRecord flow;
      flow.minute = m;
      // Attacker-controlled sources (its own rented port) and destinations.
      flow.src_ip = net::Ipv4Address(0xC6000000 + static_cast<std::uint32_t>(
                                                      rng.below(256)));
      flow.dst_ip = net::Ipv4Address(0x0AFE0000 + static_cast<std::uint32_t>(
                                                      rng.below(8)));
      flow.protocol = protocol;
      flow.src_port = src_port;
      flow.dst_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
      flow.packets = 1 + static_cast<std::uint32_t>(rng.below(3));
      flow.bytes = static_cast<std::uint64_t>(flow.packets * packet_size);
      flow.src_member = 9999;
      flow.blackholed = blackholed;
      flows.push_back(flow);
    }
  }
  std::stable_sort(flows.begin(), flows.end(),
                   [](const net::FlowRecord& a, const net::FlowRecord& b) {
                     return a.minute < b.minute;
                   });
  return flows;
}

struct Outcome {
  double woe = 0.0;
  double fnr_ntp = 0.0;  ///< missed real NTP attack records (scenario i)
  double fpr = 0.0;      ///< false positives on clean benign records (scenario ii)
};

Outcome evaluate_poisoned(const std::vector<net::FlowRecord>& poisoned_raw,
                          const core::AggregatedDataset& clean_eval,
                          std::uint8_t protocol, std::uint16_t src_port) {
  const auto balanced = core::balance_trace(poisoned_raw, 7);
  Outcome outcome;
  outcome.woe = signature_woe(balanced, protocol, src_port);

  const core::Aggregator aggregator;
  const auto train = aggregator.aggregate(balanced);
  ml::Pipeline pipeline = ml::make_model_pipeline(ml::ModelKind::kXgb);
  pipeline.fit(train.data);
  const auto predictions = pipeline.predict_all(clean_eval.data);

  ml::ConfusionMatrix all;
  ml::ConfusionMatrix ntp_records;
  for (std::size_t i = 0; i < clean_eval.size(); ++i) {
    all.add(clean_eval.data.label(i), predictions[i]);
    const auto& meta = clean_eval.meta[i];
    if (clean_eval.data.label(i) == 1 && meta.dominant_vector.has_value() &&
        *meta.dominant_vector == net::DdosVector::kNtp) {
      ntp_records.add(1, predictions[i]);
    }
  }
  outcome.fnr_ntp = ntp_records.fnr();
  outcome.fpr = all.fpr();
  return outcome;
}

}  // namespace

int main() {
  bench::print_header("Appendix E", "poisoning the training data");
  bench::print_expectation(
      "influencing a signature's WoE needs sustained injection comparable "
      "to the traffic carrying that signature; low-rate poisoning moves "
      "neither the WoE nor the model");

  // Base training traffic and clean evaluation traffic (later time range).
  flowgen::TrafficGenerator gen(flowgen::ixp_us1(), 23000);
  const auto raw_train = gen.generate(0, kDay).flows;
  const auto eval_trace = bench::make_balanced(flowgen::ixp_us1(), 23001, kDay,
                                               kDay);
  const core::Aggregator aggregator;
  const auto clean_eval = aggregator.aggregate(eval_trace.flows);
  const double benign_fpm = flowgen::ixp_us1().benign_flows_per_minute;

  const double fractions[] = {0.0, 0.01, 0.05, 0.2, 0.5};

  std::printf("(i) hiding NTP attacks: benign-side NTP-shaped injection\n");
  util::TextTable hide;
  hide.set_header({"attacker rate (of benign)", "WoE(udp/123)",
                   "NTP-record fnr (clean eval)"});
  for (const double fraction : fractions) {
    const auto poisoned = inject(raw_train, fraction * benign_fpm,
                                 /*blackholed=*/false, 17, 123, 468.0, 1);
    const Outcome outcome = evaluate_poisoned(poisoned, clean_eval, 17, 123);
    hide.add_row({util::fmt_pct(fraction, 0), util::fmt(outcome.woe, 2),
                  util::fmt(outcome.fnr_ntp)});
  }
  std::fputs(hide.render().c_str(), stdout);

  std::printf(
      "\n(ii) forging false positives: blackholed HTTPS-shaped injection\n");
  util::TextTable forge;
  forge.set_header({"attacker rate (of benign)", "WoE(tcp/443)",
                    "fpr on clean eval"});
  for (const double fraction : fractions) {
    const auto poisoned = inject(raw_train, fraction * benign_fpm,
                                 /*blackholed=*/true, 6, 443, 900.0, 2);
    const Outcome outcome = evaluate_poisoned(poisoned, clean_eval, 6, 443);
    forge.add_row({util::fmt_pct(fraction, 0), util::fmt(outcome.woe, 2),
                   util::fmt(outcome.fpr)});
  }
  std::fputs(forge.render().c_str(), stdout);

  std::printf(
      "\nmitigation (§6.6/App. E): operators pin WoEs of critical services "
      "(e.g. WoE(tcp/443) := -5) — set_override() on the WoE column.\n");
  return 0;
}
