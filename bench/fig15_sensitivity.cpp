// Figure 15 (Appendix A) — parameter sensitivity of Algorithm 1: remaining
// rule count over the L_c x L_s loss-threshold grid. Paper: counts drop
// steeply up to ~0.01 and flatten beyond — hence L_c = L_s = 0.01.

#include "../bench/common.hpp"

#include "arm/rules.hpp"

int main() {
  using namespace scrubber;
  bench::print_header("Figure 15 (Appendix A)",
                      "Algorithm 1 sensitivity: remaining rules over Lc x Ls");
  bench::print_expectation(
      "rule count decreases with both losses; little further reduction "
      "beyond Lc = Ls = 0.01 (the chosen operating point)");

  // One shared mined rule pool.
  std::vector<net::FlowRecord> flows;
  std::uint64_t seed = 1500;
  for (const auto& profile : {flowgen::ixp_ce1(), flowgen::ixp_us1()}) {
    const auto trace = bench::make_balanced(profile, seed++, 0, 24 * 60);
    flows.insert(flows.end(), trace.flows.begin(), trace.flows.end());
  }
  arm::Itemizer itemizer;
  std::vector<arm::Transaction> transactions;
  transactions.reserve(flows.size());
  for (const auto& flow : flows) transactions.push_back(itemizer.itemize(flow));

  arm::FpGrowthParams params;
  params.min_support = 0.002;
  params.min_confidence = 0.8;
  const auto mined =
      arm::keep_blackhole_consequent(arm::mine_rules(transactions, params));
  std::printf("blackhole-consequent rules before minimization: %zu\n\n",
              mined.size());

  const std::vector<double> losses{0.0001, 0.001, 0.005, 0.01, 0.05, 0.1};
  util::TextTable table;
  std::vector<std::string> header{"Lc \\ Ls"};
  for (const double ls : losses) header.push_back(util::fmt(ls, 4));
  table.set_header(header);
  for (const double lc : losses) {
    std::vector<std::string> row{util::fmt(lc, 4)};
    for (const double ls : losses) {
      const auto minimized = arm::minimize_rules(mined, lc, ls);
      row.push_back(util::fmt_count(minimized.size()));
    }
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
