// Figure 4b — packet-size characteristics of well-known DDoS ports:
// blackholing class vs self-attack class, per vector. Paper: the size
// distributions match across the two independently collected classes
// (e.g. NTP monlist ~500 B), evidence that blackholing traffic is
// predominantly real DDoS.

#include <map>

#include "../bench/common.hpp"

int main() {
  using namespace scrubber;
  bench::print_header("Figure 4b",
                      "packet sizes per DDoS vector: blackholing vs SAS");
  bench::print_expectation(
      "per-vector quartiles nearly identical between the blackholing class "
      "and the self-attack class (NTP ~470B, SSDP ~310B, LDAP/memcached near "
      "MTU)");

  std::map<net::DdosVector, std::vector<double>> bh_sizes, sas_sizes;

  std::uint64_t seed = 1606;
  for (const auto& profile : flowgen::all_ixp_profiles()) {
    const std::uint32_t minutes =
        profile.benign_flows_per_minute > 1000.0 ? 24 * 60 : 2 * 24 * 60;
    const auto trace = bench::make_balanced(profile, seed++, 0, minutes);
    for (const auto& flow : trace.flows) {
      if (!flow.blackholed) continue;
      if (const auto v = flow.vector())
        bh_sizes[*v].push_back(flow.mean_packet_size());
    }
  }
  const auto sas = bench::make_balanced(
      flowgen::self_attack_profile(), seed++, 0, 2 * 24 * 60,
      flowgen::TrafficGenerator::Labeling::kGroundTruth);
  for (const auto& flow : sas.flows) {
    if (!flow.blackholed) continue;
    if (const auto v = flow.vector())
      sas_sizes[*v].push_back(flow.mean_packet_size());
  }

  util::TextTable table;
  table.set_header({"vector", "BH p25", "BH p50", "BH p75", "SAS p25",
                    "SAS p50", "SAS p75", "n(BH)", "n(SAS)"});
  for (const auto& sig : net::vector_signatures()) {
    const auto& bh = bh_sizes[sig.vector];
    const auto& sa = sas_sizes[sig.vector];
    if (bh.size() < 20 || sa.size() < 20) continue;  // too thin to compare
    table.add_row({std::string(net::vector_name(sig.vector)),
                   util::fmt(util::quantile(bh, 0.25), 0),
                   util::fmt(util::quantile(bh, 0.5), 0),
                   util::fmt(util::quantile(bh, 0.75), 0),
                   util::fmt(util::quantile(sa, 0.25), 0),
                   util::fmt(util::quantile(sa, 0.5), 0),
                   util::fmt(util::quantile(sa, 0.75), 0),
                   util::fmt_count(bh.size()), util::fmt_count(sa.size())});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
