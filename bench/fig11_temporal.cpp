// Figure 11 — temporal model drift. (a) one-shot training on the first
// day/week/month, scored on every later week; (b) sliding-window training
// re-trained for each evaluation week on the trailing day/week/month.
// Paper: one-shot day-models decay quickly (< 0.90), month-models hold
// ~0.99; sliding-window training lifts performance overall, with the
// trailing month best and never below 0.95.
//
// Scaled substrate: 9 simulated weeks per site with a 4-week reflector
// lifetime (vs. the paper's months of wall-clock), so drift shows within
// the simulated horizon. "ALL" merges the two simulated sites (paper: all
// five IXPs).

#include <deque>

#include "../bench/common.hpp"

namespace {

using namespace scrubber;

constexpr std::uint32_t kDay = 24 * 60;
constexpr std::uint32_t kWeek = 7 * kDay;
constexpr std::uint32_t kWeeks = 8;
constexpr std::uint32_t kMonthDays = 21;  // "month" on the scaled clock

/// Per-day aggregated records for one site over the whole horizon.
std::vector<core::AggregatedDataset> aggregate_days(flowgen::IxpProfile profile,
                                                    std::uint64_t seed) {
  profile.reflector_churn_weeks = 4.0;  // accelerate drift on scaled time
  flowgen::TrafficGenerator gen(profile, seed);
  const core::Aggregator aggregator;

  std::vector<core::AggregatedDataset> days;
  core::Balancer balancer(seed ^ 0xDD);
  std::uint32_t day_start = 0;
  gen.generate_stream(
      0, kWeeks * kWeek, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t minute, std::span<const net::FlowRecord> flows) {
        if (minute >= day_start + kDay) {
          days.push_back(aggregator.aggregate(balancer.take_balanced()));
          balancer = core::Balancer((seed ^ 0xDD) + days.size());
          day_start += kDay;
        }
        balancer.add_minute(minute, flows);
      });
  days.push_back(aggregator.aggregate(balancer.take_balanced()));
  return days;
}

core::AggregatedDataset merge_days(const std::vector<core::AggregatedDataset>& days,
                                   std::size_t first, std::size_t count) {
  core::AggregatedDataset out = days.at(first);
  for (std::size_t d = first + 1; d < first + count && d < days.size(); ++d)
    out.append(days[d]);
  return out;
}

double train_eval(const core::AggregatedDataset& train,
                  const core::AggregatedDataset& test) {
  if (train.size() < 50 || test.size() < 50 ||
      train.data.positive_count() < 10 || test.data.positive_count() < 10)
    return -1.0;  // window too thin to score meaningfully
  ml::Pipeline pipeline = ml::make_model_pipeline(ml::ModelKind::kXgb);
  pipeline.fit(train.data);
  return bench::fbeta(test, pipeline.predict_all(test.data));
}

std::string cell(double value) {
  return value < 0.0 ? "-" : util::fmt(value);
}

void run_site(const std::string& name,
              const std::vector<core::AggregatedDataset>& days) {
  std::printf("--- site %s ---\n", name.c_str());

  // (a) one-shot training at the beginning of the trace.
  const core::AggregatedDataset first_day = merge_days(days, 0, 1);
  const core::AggregatedDataset first_week = merge_days(days, 0, 7);
  const core::AggregatedDataset first_month = merge_days(days, 0, kMonthDays);

  util::TextTable oneshot;
  oneshot.set_header({"eval week", "train: 1 day", "1 week", "1 month"});
  std::vector<double> day_scores, week_scores, month_scores;
  for (std::uint32_t w = 4; w < kWeeks; ++w) {
    const auto test = merge_days(days, w * 7, 7);
    const double d = train_eval(first_day, test);
    const double wk = train_eval(first_week, test);
    const double mo = train_eval(first_month, test);
    if (d >= 0.0) day_scores.push_back(d);
    if (wk >= 0.0) week_scores.push_back(wk);
    if (mo >= 0.0) month_scores.push_back(mo);
    oneshot.add_row({"W" + std::to_string(w), cell(d), cell(wk), cell(mo)});
  }
  oneshot.add_row({"median", cell(util::median(day_scores)),
                   cell(util::median(week_scores)),
                   cell(util::median(month_scores))});
  std::printf("(a) one-shot training:\n%s\n", oneshot.render().c_str());

  // (b) sliding-window training: retrain per eval week on trailing data.
  util::TextTable sliding;
  sliding.set_header({"eval week", "window: 1 day", "1 week", "1 month"});
  std::vector<double> s_day, s_week, s_month;
  for (std::uint32_t w = 4; w < kWeeks; ++w) {
    const std::size_t eval_start = w * 7;
    const auto test = merge_days(days, eval_start, 7);
    const double d = train_eval(merge_days(days, eval_start - 1, 1), test);
    const double wk = train_eval(merge_days(days, eval_start - 7, 7), test);
    const double mo =
        train_eval(merge_days(days, eval_start - kMonthDays, kMonthDays), test);
    if (d >= 0.0) s_day.push_back(d);
    if (wk >= 0.0) s_week.push_back(wk);
    if (mo >= 0.0) s_month.push_back(mo);
    sliding.add_row({"W" + std::to_string(w), cell(d), cell(wk), cell(mo)});
  }
  sliding.add_row({"median", cell(util::median(s_day)),
                   cell(util::median(s_week)), cell(util::median(s_month))});
  std::printf("(b) sliding-window training:\n%s\n", sliding.render().c_str());
}

}  // namespace

int main() {
  bench::print_header("Figure 11", "temporal model drift (XGB)");
  bench::print_expectation(
      "one-shot day-trained models decay over the weeks; longer one-shot "
      "windows decay slower; sliding-window retraining recovers performance, "
      "trailing month best");

  // Two sites with reduced volume so nine weeks stay laptop-sized.
  flowgen::IxpProfile us1 = flowgen::ixp_us1();
  us1.benign_flows_per_minute = 220.0;
  flowgen::IxpProfile ce1 = flowgen::ixp_ce1();
  ce1.benign_flows_per_minute = 320.0;
  ce1.attacks_per_day = 40.0;

  const auto days_us1 = aggregate_days(us1, 501);
  const auto days_ce1 = aggregate_days(ce1, 502);

  run_site("IXP-US1", days_us1);
  run_site("IXP-CE1", days_ce1);

  // ALL: per-day union of both sites (paper: all five IXPs).
  std::vector<core::AggregatedDataset> days_all;
  for (std::size_t d = 0; d < std::min(days_us1.size(), days_ce1.size()); ++d) {
    core::AggregatedDataset merged = days_us1[d];
    merged.append(days_ce1[d]);
    days_all.push_back(std::move(merged));
  }
  run_site("ALL", days_all);
  return 0;
}
