// Ingest decode throughput — the zero-allocation, in-place, non-throwing
// SflowView walk against the materializing, throwing oracle decoder, over
// a {samples/datagram (= datagram size) x hostile fraction} sweep writing
// BENCH_ingest.json.
//
// The oracle (SflowDatagram::decode) is the specification: it heap-
// allocates a datagram + sample vector per wire buffer and reports
// malformed input with a C++ throw — exactly the per-packet costs a
// hostile flood weaponizes. The in-place walk must decode the same bytes
// with zero allocation and a status return. Every row first proves
// bit-identity (per-wire accepted samples, statuses, and error counts
// equal between the two decoders) and only then times both; the speedup
// bars (>=2x on well-formed input, >=5x on a 50%-hostile stream) are hard
// gates — any miss, like any identity mismatch, exits non-zero. `--smoke`
// shrinks the sweep but keeps every gate; that is the mode CI runs.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "../bench/common.hpp"
#include "net/sflow.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace scrubber;

int failures = 0;

void expect(bool ok, const char* what) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr, "FAIL: %s\n", what);
}

/// A structurally valid datagram with randomized field values.
net::SflowDatagram random_datagram(util::Rng& rng, std::size_t samples) {
  net::SflowDatagram datagram;
  datagram.agent = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
  datagram.sub_agent_id = static_cast<std::uint32_t>(rng.below(16));
  datagram.sequence = static_cast<std::uint32_t>(rng.below(1u << 20));
  datagram.uptime_ms = static_cast<std::uint32_t>(rng.below(6'000'000));
  for (std::size_t i = 0; i < samples; ++i) {
    net::SflowFlowSample sample;
    sample.sequence = static_cast<std::uint32_t>(rng.below(1u << 20));
    sample.sampling_rate = 4;
    sample.sample_pool = static_cast<std::uint32_t>(rng.below(1u << 24));
    sample.input_port = static_cast<std::uint32_t>(rng.below(1024));
    sample.output_port = static_cast<std::uint32_t>(rng.below(1024));
    sample.packet.src_ip = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
    sample.packet.dst_ip = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
    sample.packet.src_port = static_cast<std::uint16_t>(rng.below(65536));
    sample.packet.dst_port = static_cast<std::uint16_t>(rng.below(65536));
    sample.packet.protocol = rng.chance(0.5) ? 6 : 17;
    sample.packet.tcp_flags = static_cast<std::uint8_t>(rng.below(256));
    sample.packet.length = static_cast<std::uint16_t>(60 + rng.below(1441));
    sample.packet.ingress_member = sample.input_port;
    datagram.samples.push_back(sample);
  }
  return datagram;
}

/// Pre-encoded corpus: `hostile_fraction` of the buffers are corrupted so
/// both decoders reject them (half truncations — the decoder does real
/// work before starving — and half bad-version headers, the cheapest
/// possible reject). This is the shape of a spoofed-source flood hitting
/// a collector port.
std::vector<std::vector<std::uint8_t>> make_corpus(std::size_t datagrams,
                                                   std::size_t samples,
                                                   double hostile_fraction,
                                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.reserve(datagrams);
  for (std::size_t i = 0; i < datagrams; ++i) {
    auto wire = random_datagram(rng, samples).encode();
    if (rng.uniform() < hostile_fraction) {
      if (rng.chance(0.5)) {
        // Any strict prefix starves the declared sample count: reject.
        wire.resize(1 + rng.below(wire.size() - 1));
      } else {
        wire[0] = 0xFF;  // bad version word: immediate reject
      }
    }
    corpus.push_back(std::move(wire));
  }
  return corpus;
}

/// Decode outcome of one buffer, for the per-row identity check.
struct Decoded {
  bool accepted = false;
  std::vector<net::SflowFlowSample> samples;
};

/// Work accumulated by a timed pass — enough data dependency that the
/// compiler cannot skip the field loads the route stage would perform.
struct PassTotals {
  std::uint64_t accepted = 0;
  std::uint64_t errors = 0;
  std::uint64_t samples = 0;
  std::uint64_t checksum = 0;
};

PassTotals oracle_pass(const std::vector<std::vector<std::uint8_t>>& corpus) {
  PassTotals totals;
  for (const auto& wire : corpus) {
    try {
      const net::SflowDatagram datagram = net::SflowDatagram::decode(wire);
      ++totals.accepted;
      totals.samples += datagram.samples.size();
      for (const auto& sample : datagram.samples) {
        totals.checksum += sample.packet.dst_ip.value() + sample.packet.length;
      }
    } catch (const net::SflowDecodeError&) {
      ++totals.errors;
    }
  }
  return totals;
}

PassTotals view_pass(const std::vector<std::vector<std::uint8_t>>& corpus) {
  PassTotals totals;
  for (const auto& wire : corpus) {
    net::SflowHeaderView header;
    // Per-wire accumulation committed only on kOk: a rejected datagram
    // contributes nothing, mirroring the engine's fused-route rollback
    // (the oracle's whole-datagram throw gives the same all-or-nothing).
    std::uint64_t wire_samples = 0;
    std::uint64_t wire_checksum = 0;
    const net::DecodeStatus status = net::SflowView::decode(
        std::span<const std::uint8_t>(wire.data(), wire.size()), header,
        [&](const net::SflowFlowSample& sample) {
          ++wire_samples;
          wire_checksum +=
              sample.packet.dst_ip.value() + sample.packet.length;
        });
    if (status == net::DecodeStatus::kOk) {
      ++totals.accepted;
      totals.samples += wire_samples;
      totals.checksum += wire_checksum;
    } else {
      ++totals.errors;
    }
  }
  return totals;
}

/// Bit-identity of the two decoders on every buffer of the corpus: equal
/// accept/reject verdicts and equal accepted-sample sequences. A rejected
/// buffer contributes nothing either way (the engine rolls the fused
/// route back), so statuses + samples are the full observable output.
bool identical_on(const std::vector<std::vector<std::uint8_t>>& corpus) {
  for (const auto& wire : corpus) {
    Decoded oracle;
    try {
      oracle.samples = net::SflowDatagram::decode(wire).samples;
      oracle.accepted = true;
    } catch (const net::SflowDecodeError&) {
    }
    Decoded view;
    net::SflowHeaderView header;
    const net::DecodeStatus status = net::SflowView::decode(
        std::span<const std::uint8_t>(wire.data(), wire.size()), header,
        [&](const net::SflowFlowSample& sample) {
          view.samples.push_back(sample);
        });
    view.accepted = status == net::DecodeStatus::kOk;
    if (view.accepted != oracle.accepted) return false;
    if (view.accepted && view.samples != oracle.samples) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = [&] {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--smoke") == 0) return true;
    }
    return false;
  }();
  bench::print_header("Ingest",
                      "in-place fused sFlow decode vs the throwing oracle "
                      "(samples/datagram x hostile fraction)");
  bench::print_expectation(
      ">= 2x single-thread decode throughput on well-formed input, >= 5x "
      "on a 50%-hostile stream (the oracle pays one unwind per bad "
      "datagram); bit-identical accepted samples on every buffer");

  const std::size_t kDatagrams = smoke ? 2'000 : 20'000;
  const int repeats = smoke ? 2 : 5;
  const std::vector<std::size_t> sample_counts =
      smoke ? std::vector<std::size_t>{8}
            : std::vector<std::size_t>{1, 8, 64};
  const std::vector<double> hostile_fractions = {0.0, 0.5};

  util::TextTable table;
  table.set_header({"samples", "bytes/dgram", "hostile", "oracle_Mdgram/s",
                    "inplace_Mdgram/s", "speedup", "identical", "bar"});
  util::JsonArray results;

  for (const std::size_t samples : sample_counts) {
    for (const double hostile : hostile_fractions) {
      // Hold the per-pass byte volume roughly constant across rows: fewer
      // datagrams when each carries more samples. Otherwise large-sample
      // rows blow the cache-resident footprint and both decoders converge
      // on DRAM streaming — the row would measure memory bandwidth, not
      // the decode walk (the quantity the speedup bars gate).
      const std::size_t row_datagrams =
          kDatagrams * 8 / std::max<std::size_t>(samples, 8);
      const auto corpus = make_corpus(
          row_datagrams, samples, hostile,
          0x1276E57 ^ (samples << 8) ^ static_cast<std::uint64_t>(hostile * 2));
      std::uint64_t corpus_bytes = 0;
      for (const auto& wire : corpus) corpus_bytes += wire.size();

      // Identity first: timing a decoder that disagrees with the oracle
      // would be timing a bug.
      const bool identical = identical_on(corpus);
      expect(identical, "in-place decode bit-identical to the oracle");

      const PassTotals oracle_totals = oracle_pass(corpus);
      const PassTotals view_totals = view_pass(corpus);
      expect(oracle_totals.accepted == view_totals.accepted &&
                 oracle_totals.errors == view_totals.errors &&
                 oracle_totals.samples == view_totals.samples &&
                 oracle_totals.checksum == view_totals.checksum,
             "pass totals (accepted/errors/samples/checksum) agree");

      const double oracle_seconds = bench::min_seconds_of(repeats, [&] {
        bench::keep_alive(static_cast<long long>(oracle_pass(corpus).checksum));
      });
      const double view_seconds = bench::min_seconds_of(repeats, [&] {
        bench::keep_alive(static_cast<long long>(view_pass(corpus).checksum));
      });
      const double speedup =
          view_seconds > 0.0 ? oracle_seconds / view_seconds : 0.0;
      const double bar = hostile >= 0.5 ? 5.0 : 2.0;
      const bool bar_met = speedup >= bar;
      char bar_text[48];
      std::snprintf(bar_text, sizeof(bar_text), ">=%.0fx decode speedup met",
                    bar);
      expect(bar_met, bar_text);

      const double oracle_rate =
          static_cast<double>(corpus.size()) / oracle_seconds / 1e6;
      const double view_rate =
          static_cast<double>(corpus.size()) / view_seconds / 1e6;

      char hostile_text[16], oracle_text[32], view_text[32], speedup_text[16];
      std::snprintf(hostile_text, sizeof(hostile_text), "%.0f%%",
                    hostile * 100.0);
      std::snprintf(oracle_text, sizeof(oracle_text), "%.2f", oracle_rate);
      std::snprintf(view_text, sizeof(view_text), "%.2f", view_rate);
      std::snprintf(speedup_text, sizeof(speedup_text), "%.2fx", speedup);
      table.add_row({std::to_string(samples),
                     std::to_string(corpus_bytes / corpus.size()),
                     hostile_text, oracle_text, view_text, speedup_text,
                     identical ? "yes" : "NO", bar_met ? "pass" : "FAIL"});

      util::Json item;
      item.set("samples_per_datagram", static_cast<double>(samples));
      item.set("bytes_per_datagram",
               static_cast<double>(corpus_bytes / corpus.size()));
      item.set("hostile_fraction", hostile);
      item.set("datagrams", static_cast<double>(corpus.size()));
      item.set("accepted", static_cast<double>(view_totals.accepted));
      item.set("decode_errors", static_cast<double>(view_totals.errors));
      item.set("oracle_seconds", oracle_seconds);
      item.set("inplace_seconds", view_seconds);
      item.set("oracle_mdatagrams_per_sec", oracle_rate);
      item.set("inplace_mdatagrams_per_sec", view_rate);
      item.set("inplace_gbytes_per_sec",
               static_cast<double>(corpus_bytes) / view_seconds / 1e9);
      item.set("speedup", speedup);
      item.set("speedup_bar", bar);
      item.set("bar_met", bar_met);
      item.set("identical", identical);
      results.push_back(std::move(item));
    }
  }
  std::printf("%s", table.render().c_str());

  util::Json out;
  out.set("bench", "ingest");
  bench::set_provenance(out);
  out.set("smoke", smoke);
  out.set("repeats", static_cast<double>(repeats));
  out.set("results", std::move(results));
  // The smoke run is a correctness gate, not a perf record — don't
  // overwrite the trajectory file with tiny-corpus numbers.
  if (!smoke) {
    std::ofstream file("BENCH_ingest.json");
    file << out.dump(2) << "\n";
    std::printf("\nwrote BENCH_ingest.json\n");
  }
  if (failures != 0) {
    std::fprintf(stderr, "\n%d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("all identity checks and speedup bars passed\n");
  return 0;
}
