// Figure 16 (Appendix B) — correlation deliberately introduced by the
// ranking aggregation. (a) CDF of the Spearman correlation matrix of the
// aggregated feature columns, per ranking metric; a substantial fraction
// of pairs correlate > 0.7/0.8. (b) PCA explained variance: ~20 components
// cover ~0.8 of the variance, ~50 nearly all — the basis for the NN
// pipeline's PCA stage.

#include "../bench/common.hpp"

#include "ml/pca.hpp"
#include "ml/preprocess.hpp"

int main() {
  using namespace scrubber;
  bench::print_header("Figure 16 (Appendix B)",
                      "correlation introduced by flow aggregation");
  bench::print_expectation(
      "a meaningful share of column pairs has |spearman| > 0.7; first ~20 "
      "principal components explain ~0.8 of total variance");

  const auto trace = bench::make_balanced(flowgen::ixp_ce1(), 1600, 0, 24 * 60);
  const core::Aggregator aggregator;
  const auto aggregated = aggregator.aggregate(trace.flows);
  std::printf("aggregated records: %zu\n\n", aggregated.size());

  // Impute missing ranks so correlation/PCA see complete columns.
  ml::Dataset data = aggregated.data;
  const ml::Imputer imputer(-1.0);
  for (std::size_t i = 0; i < data.n_rows(); ++i) imputer.apply(data.row(i));

  // ----- (a) Spearman correlation CDF among the numeric metric columns,
  // grouped by metric as in the figure.
  const char* metrics[] = {"pktsize", "bytes", "packets"};
  util::TextTable corr;
  corr.set_header({"metric", "pairs", ">0.5", ">0.7", ">0.8"});
  for (const char* metric : metrics) {
    std::vector<std::size_t> cols;
    for (std::size_t j = 0; j < data.n_cols(); ++j) {
      const auto& name = data.column(j).name;
      if (data.column(j).kind == ml::ColumnKind::kNumeric &&
          name.find(std::string("/") + metric + "/") != std::string::npos) {
        cols.push_back(j);
      }
    }
    // Column vectors.
    std::vector<std::vector<double>> series(cols.size());
    for (std::size_t k = 0; k < cols.size(); ++k) {
      series[k].reserve(data.n_rows());
      for (std::size_t i = 0; i < data.n_rows(); ++i)
        series[k].push_back(data.at(i, cols[k]));
    }
    std::size_t pairs = 0, gt5 = 0, gt7 = 0, gt8 = 0;
    for (std::size_t a = 0; a < series.size(); ++a) {
      for (std::size_t b = a + 1; b < series.size(); ++b) {
        const double rho = std::abs(util::spearman(series[a], series[b]));
        ++pairs;
        gt5 += (rho > 0.5);
        gt7 += (rho > 0.7);
        gt8 += (rho > 0.8);
      }
    }
    corr.add_row({metric, util::fmt_count(pairs),
                  util::fmt_pct(static_cast<double>(gt5) / pairs),
                  util::fmt_pct(static_cast<double>(gt7) / pairs),
                  util::fmt_pct(static_cast<double>(gt8) / pairs)});
  }
  std::printf("(a) Spearman correlation among aggregated columns:\n%s\n",
              corr.render().c_str());

  // ----- (b) PCA explained variance on the standardized feature matrix.
  ml::Standardizer standardizer;
  standardizer.fit(data);
  const ml::Dataset standardized = standardizer.apply_to_dataset(data);
  ml::Pca pca(0);
  pca.fit(standardized);
  std::printf("(b) PCA cumulative explained variance:\n");
  for (const std::size_t k : {1u, 5u, 10u, 20u, 30u, 50u, 75u, 100u, 150u}) {
    const double ev = pca.explained_variance(k);
    std::printf("  %3zu components: %6s |%s|\n", static_cast<std::size_t>(k),
                util::fmt_pct(ev, 1).c_str(), util::bar(ev, 40).c_str());
  }
  return 0;
}
