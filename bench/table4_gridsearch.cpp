// Table 4 (Appendix C) — hyperparameter grid search with 3-fold
// cross-validation, scored by mean F_beta=0.5. The paper searched the full
// grids on a 250K-record sample; here each model searches a representative
// sub-grid on the merged aggregated set. The reproducible claim is the
// methodology plus the direction of the selected values (deeper trees /
// more estimators win for XGB, small C for LSVM, tiny var-smoothing for
// NB-G).

#include "../bench/common.hpp"

#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/grid_search.hpp"
#include "ml/linear.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/neural_net.hpp"
#include "ml/pca.hpp"
#include "ml/preprocess.hpp"
#include "ml/woe.hpp"

namespace {

using namespace scrubber;

ml::Pipeline base_pipeline() {
  ml::Pipeline p;
  p.add(std::make_unique<ml::FeatureReducer>());
  p.add(std::make_unique<ml::Imputer>(-1.0));
  p.add(std::make_unique<ml::WoeEncoder>());
  return p;
}

void report(const char* model, const ml::GridSearchResult& result) {
  std::printf("%s:\n", model);
  for (const auto& [point, score] : result.all_scores) {
    std::string params;
    for (const auto& [key, value] : point) {
      params += key + "=" + util::fmt(value, value < 0.01 ? 6 : 2) + " ";
    }
    const bool best = point == result.best_params;
    std::printf("  %-44s CV F_beta %.3f%s\n", params.c_str(), score,
                best ? "  <= selected" : "");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned train_threads = bench::configure_train_threads(argc, argv);
  bench::print_header("Table 4 (Appendix C)",
                      "hyperparameter grid search, 3-fold CV, F_beta=0.5");
  bench::print_expectation(
      "larger #estimators/depth selected for XGB; small regularization C "
      "competitive for LSVM; small var-smoothing for NB-G");

  const auto trace = bench::make_balanced(flowgen::ixp_us1(), 4000, 0, 36 * 60);
  const core::Aggregator aggregator;
  const auto aggregated = aggregator.aggregate(trace.flows);
  std::printf("grid-search sample: %zu records\n\n", aggregated.size());

  util::Rng rng(4);

  // XGBoost: #estimators x max depth x learning rate (sub-grid of Table 4).
  report("XGBoost",
         ml::grid_search(
             aggregated.data,
             ml::param_grid({{"n_estimators", {4.0, 8.0, 24.0}},
                             {"max_depth", {4.0, 8.0}},
                             {"learning_rate", {0.1, 0.3}}}),
             [](const ml::ParamPoint& point) {
               ml::GbtParams params;
               params.n_estimators =
                   static_cast<std::size_t>(point.at("n_estimators"));
               params.max_depth = static_cast<std::size_t>(point.at("max_depth"));
               params.learning_rate = point.at("learning_rate");
               ml::Pipeline p = base_pipeline();
               p.set_classifier(std::make_unique<ml::GradientBoostedTrees>(params));
               return p;
             },
             3, rng));

  // Decision tree: min samples leaf x min impurity decrease.
  report("Decision Tree",
         ml::grid_search(
             aggregated.data,
             ml::param_grid({{"min_samples_leaf", {1.0, 100.0, 300.0}},
                             {"min_impurity_decrease", {1e-5, 1e-3}}}),
             [](const ml::ParamPoint& point) {
               ml::DecisionTreeParams params;
               params.min_samples_leaf =
                   static_cast<std::size_t>(point.at("min_samples_leaf"));
               params.min_impurity_decrease = point.at("min_impurity_decrease");
               ml::Pipeline p = base_pipeline();
               p.set_classifier(std::make_unique<ml::DecisionTree>(params));
               return p;
             },
             3, rng));

  // LSVM: regularization C x class weight.
  report("LSVM",
         ml::grid_search(
             aggregated.data,
             ml::param_grid({{"C", {1e-5, 1e-2, 1.0, 100.0}},
                             {"balanced", {0.0, 1.0}}}),
             [](const ml::ParamPoint& point) {
               ml::LinearSvmParams params;
               params.c = point.at("C");
               params.balanced_class_weight = point.at("balanced") > 0.5;
               ml::Pipeline p = base_pipeline();
               p.add(std::make_unique<ml::Standardizer>());
               p.add(std::make_unique<ml::MinMaxNormalizer>());
               p.set_classifier(std::make_unique<ml::LinearSvm>(params));
               return p;
             },
             3, rng));

  // Gaussian NB: variance smoothing sweep.
  report("Gaussian Naive Bayes",
         ml::grid_search(
             aggregated.data,
             ml::param_grid({{"var_smoothing", {1e-9, 1e-5, 1e-3, 0.1, 1.0}}}),
             [](const ml::ParamPoint& point) {
               ml::Pipeline p = base_pipeline();
               p.add(std::make_unique<ml::MinMaxNormalizer>());
               p.set_classifier(std::make_unique<ml::GaussianNaiveBayes>(
                   point.at("var_smoothing")));
               return p;
             },
             3, rng));

  // Neural network: PCA components x hidden neurons x dropout.
  report("Neural Network",
         ml::grid_search(
             aggregated.data,
             ml::param_grid({{"pca", {25.0, 50.0}},
                             {"hidden", {8.0, 16.0}},
                             {"dropout", {0.0, 0.3}}}),
             [](const ml::ParamPoint& point) {
               ml::NeuralNetParams params;
               params.hidden_units = static_cast<std::size_t>(point.at("hidden"));
               params.dropout = point.at("dropout");
               params.epochs = 20;  // bounded for the grid sweep
               ml::Pipeline p = base_pipeline();
               p.add(std::make_unique<ml::Standardizer>());
               p.add(std::make_unique<ml::Pca>(
                   static_cast<std::size_t>(point.at("pca"))));
               p.add(std::make_unique<ml::MinMaxNormalizer>());
               p.set_classifier(std::make_unique<ml::NeuralNet>(params));
               return p;
             },
             3, rng));

  // Machine-readable run metadata (the tables above are the human view).
  util::Json meta;
  meta.set("bench", "table4_gridsearch");
  bench::set_provenance(meta);
  meta.set("train_threads", static_cast<double>(train_threads));
  std::printf("%s\n", meta.dump().c_str());
  return 0;
}
