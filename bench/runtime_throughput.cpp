// Runtime throughput — end-to-end flows/sec of the sharded streaming
// engine (decode → shard → collect → merge → score) at 1, 2, 4 and
// hardware-concurrency shards on one seeded flowgen trace. This is the
// scaling baseline for every future ingest-path PR; results land in
// BENCH_runtime.json so the perf trajectory is machine-readable.
//
// Expectation (multi-core hosts): >= 2x flows/sec at 4 shards vs 1 shard.
// On a single-core host the shard workers serialize and the ratio
// degenerates to ~1x; the JSON records hardware_concurrency so trajectory
// tooling can tell those runs apart.

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/common.hpp"
#include "core/collector.hpp"
#include "runtime/engine.hpp"
#include "util/json.hpp"

namespace {

/// Commit SHA of the tree this binary benchmarks, queried from git at run
/// time so it never goes stale between configure and run. "unknown" when
/// git or the work tree is unavailable (e.g. a tarball build).
std::string git_sha() {
  const std::string command =
      "git -C \"" SCRUBBER_SOURCE_DIR "\" rev-parse --short=12 HEAD "
      "2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return "unknown";
  std::array<char, 64> buffer{};
  std::string out;
  if (std::fgets(buffer.data(), static_cast<int>(buffer.size()), pipe) !=
      nullptr) {
    out = buffer.data();
  }
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

}  // namespace

int main() {
  using namespace scrubber;
  bench::print_header("Runtime", "sharded streaming-engine throughput");
  bench::print_expectation(
      ">= 2x flows/sec at 4 shards vs 1 shard on a multi-core host");

  // One fixed trace for every configuration: a few hours of the mid-size
  // IXP-SE feed, pre-expanded to sFlow datagrams so generation cost never
  // pollutes the measurement.
  constexpr std::uint32_t kMinutes = 360;
  constexpr std::uint32_t kSampling = 4;
  constexpr std::uint64_t kSeed = 1337;
  flowgen::TrafficGenerator generator(flowgen::ixp_se(), kSeed);
  const auto trace = generator.generate(0, kMinutes);
  const auto datagrams = core::flows_to_datagrams(
      trace.flows, kSampling, net::Ipv4Address(0x0AFF0001));
  std::printf("trace: %zu flows, %zu datagrams, %zu BGP updates, %u min\n\n",
              trace.flows.size(), datagrams.size(), trace.updates.size(),
              kMinutes);

  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> shard_counts{1, 2, 4};
  if (std::find(shard_counts.begin(), shard_counts.end(),
                static_cast<std::size_t>(hardware)) == shard_counts.end()) {
    shard_counts.push_back(hardware);
  }

  util::TextTable table;
  table.set_header({"shards", "wall_s", "flows/s", "speedup_vs_1"});
  util::JsonArray results;
  double flows_per_sec_1 = 0.0;

  for (const std::size_t shards : shard_counts) {
    // Best of 3 repetitions: the engine is construct-push-finish per run,
    // so scheduler noise shows up as slow outliers, not fast ones.
    runtime::EngineSnapshot best;
    for (int rep = 0; rep < 3; ++rep) {
      runtime::EngineConfig config;
      config.shards = shards;
      config.queue_capacity = 4096;
      config.backpressure = runtime::Backpressure::kBlock;
      config.collector.sampling_rate = kSampling;
      runtime::Engine engine(config, nullptr);
      std::size_t next_update = 0;
      for (const auto& datagram : datagrams) {
        const auto minute =
            static_cast<std::uint32_t>(datagram.uptime_ms / 60'000);
        while (next_update < trace.updates.size() &&
               trace.updates[next_update].first <= minute) {
          engine.push_bgp(trace.updates[next_update].second,
                          std::uint64_t{trace.updates[next_update].first} *
                              60'000);
          ++next_update;
        }
        engine.push(datagram);
      }
      engine.finish();
      const runtime::EngineSnapshot snapshot = engine.stats();
      if (rep == 0 || snapshot.flows_per_sec() > best.flows_per_sec()) {
        best = snapshot;
      }
    }

    if (shards == 1) flows_per_sec_1 = best.flows_per_sec();
    const double speedup =
        flows_per_sec_1 > 0.0 ? best.flows_per_sec() / flows_per_sec_1 : 0.0;
    char wall[32], rate[32], ratio[32];
    std::snprintf(wall, sizeof(wall), "%.3f", best.wall_seconds);
    std::snprintf(rate, sizeof(rate), "%.0f", best.flows_per_sec());
    std::snprintf(ratio, sizeof(ratio), "%.2f", speedup);
    table.add_row({std::to_string(shards), wall, rate, ratio});

    util::Json row;
    row.set("shards", static_cast<double>(shards));
    row.set("wall_seconds", best.wall_seconds);
    row.set("flows_per_sec", best.flows_per_sec());
    row.set("flows", static_cast<double>(best.flows_out));
    row.set("minutes", static_cast<double>(best.minutes_merged));
    row.set("speedup_vs_1_shard", speedup);
    results.push_back(std::move(row));
  }
  std::printf("%s", table.render().c_str());

  util::Json out;
  out.set("bench", "runtime_throughput");
  // Provenance: which commit and which build produced these numbers. A
  // checked or sanitized build is measurable but NOT comparable with the
  // Release trajectory; trajectory tooling filters on these fields.
  out.set("git_sha", git_sha());
  out.set("build_type", SCRUBBER_BUILD_TYPE);
  out.set("cxx_flags", SCRUBBER_CXX_FLAGS);
  out.set("compiler", SCRUBBER_COMPILER);
  out.set("checked", SCRUBBER_OPT_CHECKED != 0);
  out.set("sanitize", SCRUBBER_OPT_SANITIZE);
  out.set("profile", "IXP-SE");
  out.set("trace_minutes", static_cast<double>(kMinutes));
  out.set("sampling_rate", static_cast<double>(kSampling));
  out.set("seed", static_cast<double>(kSeed));
  out.set("hardware_concurrency", static_cast<double>(hardware));
  out.set("results", std::move(results));
  std::ofstream file("BENCH_runtime.json");
  file << out.dump(2) << "\n";
  std::printf("\nwrote BENCH_runtime.json (hardware_concurrency=%u)\n",
              hardware);
  return 0;
}
