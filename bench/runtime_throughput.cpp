// Runtime throughput — end-to-end flows/sec of the sharded streaming
// engine (decode → shard → collect → merge → score) swept over
// {batch size} x {shard count} on one seeded flowgen trace. This is the
// scaling baseline for every future ingest-path PR; results land in
// BENCH_runtime.json so the perf trajectory is machine-readable.
//
// Expectation (multi-core hosts): >= 2x flows/sec at 4 shards with
// batching vs the single-record 1-shard baseline. On a single-core host
// the shard workers serialize and the ratio degenerates to ~1x; rows
// whose shard count exceeds hardware_concurrency carry "advisory": true
// (and a loud stderr warning) so trajectory tooling can tell those runs
// apart.
//
// Every run is also a correctness probe: flow counts must be conserved
// across stages (no drops under the block policy, decode out == inputs
// in, every merged minute scored) and every configuration must emit the
// same flows/minutes — the determinism contract. Any violation exits
// non-zero. `--smoke` shrinks the trace (CI-sized) while keeping all the
// assertions; that is the mode the perf-smoke CI job runs.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/common.hpp"
#include "core/collector.hpp"
#include "runtime/engine.hpp"
#include "util/json.hpp"

namespace {

using namespace scrubber;

/// One swept configuration's best-of-N snapshot.
struct RunResult {
  std::size_t shards = 0;
  std::size_t batch_records = 0;
  bool advisory = false;  ///< shards exceed hardware_concurrency
  runtime::EngineSnapshot snapshot;
};

int failures = 0;

/// Conservation check: prints and counts a failure unless `ok`.
void expect(bool ok, const char* what, std::uint64_t got,
            std::uint64_t want) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr,
               "FAIL conservation: %s (got %llu, want %llu)\n", what,
               static_cast<unsigned long long>(got),
               static_cast<unsigned long long>(want));
}

const runtime::StageSnapshot* stage_named(
    const runtime::EngineSnapshot& snapshot, const char* name) {
  for (const auto& stage : snapshot.stages) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::print_header("Runtime",
                      "sharded streaming-engine throughput (batch x shards)");
  bench::print_expectation(
      ">= 2x flows/sec at 4 shards + batching vs single-record 1 shard on a "
      "multi-core host");

  // One fixed trace for every configuration: hours of the mid-size IXP-SE
  // feed (minutes of it in --smoke), pre-expanded to sFlow datagrams so
  // generation cost never pollutes the measurement.
  const std::uint32_t kMinutes = smoke ? 24 : 360;
  constexpr std::uint32_t kSampling = 4;
  constexpr std::uint64_t kSeed = 1337;
  const int kReps = smoke ? 1 : 3;
  flowgen::TrafficGenerator generator(flowgen::ixp_se(), kSeed);
  const auto trace = generator.generate(0, kMinutes);
  const auto datagrams = core::flows_to_datagrams(
      trace.flows, kSampling, net::Ipv4Address(0x0AFF0001));
  std::uint64_t total_samples = 0;
  for (const auto& datagram : datagrams) total_samples += datagram.samples.size();
  std::printf("trace: %zu flows, %zu datagrams, %zu BGP updates, %u min%s\n\n",
              trace.flows.size(), datagrams.size(), trace.updates.size(),
              kMinutes, smoke ? " [smoke]" : "");

  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> shard_counts{1, 2};
  if (!smoke) {
    shard_counts.push_back(4);
    if (std::find(shard_counts.begin(), shard_counts.end(),
                  static_cast<std::size_t>(hardware)) == shard_counts.end()) {
      shard_counts.push_back(hardware);
    }
  }
  // Batch 1 is the single-record transfer baseline this PR's batching is
  // measured against.
  const std::vector<std::size_t> batch_counts{1,
                                              smoke ? std::size_t{256}
                                                    : std::size_t{512}};

  util::TextTable table;
  table.set_header(
      {"batch", "shards", "wall_s", "flows/s", "speedup", "advisory"});
  util::JsonArray results;
  double baseline_flows_per_sec = 0.0;  // batch=1, shards=1
  std::uint64_t reference_flows = 0, reference_minutes = 0;
  bool have_reference = false;
  std::vector<RunResult> runs;

  for (const std::size_t batch_records : batch_counts) {
    for (const std::size_t shards : shard_counts) {
      // Best of kReps repetitions: the engine is construct-push-finish
      // per run, so scheduler noise shows up as slow outliers, not fast
      // ones.
      RunResult result;
      result.shards = shards;
      result.batch_records = batch_records;
      result.advisory = shards > hardware;
      if (result.advisory) {
        std::fprintf(stderr,
                     "WARNING: %zu shards on %u hardware threads — workers "
                     "serialize, row marked advisory\n",
                     shards, hardware);
      }
      for (int rep = 0; rep < kReps; ++rep) {
        runtime::EngineConfig config;
        config.shards = shards;
        config.queue_capacity = 4096;
        config.batch_records = batch_records;
        config.backpressure = runtime::Backpressure::kBlock;
        config.collector.sampling_rate = kSampling;
        runtime::Engine engine(config, nullptr);
        std::size_t next_update = 0;
        for (const auto& datagram : datagrams) {
          const auto minute =
              static_cast<std::uint32_t>(datagram.uptime_ms / 60'000);
          while (next_update < trace.updates.size() &&
                 trace.updates[next_update].first <= minute) {
            engine.push_bgp(trace.updates[next_update].second,
                            std::uint64_t{trace.updates[next_update].first} *
                                60'000);
            ++next_update;
          }
          engine.push(datagram);
        }
        engine.finish();
        const runtime::EngineSnapshot snapshot = engine.stats();

        // Flow-count conservation across stages, checked on every run.
        expect(snapshot.input_drops == 0, "no drops under block policy",
               snapshot.input_drops, 0);
        expect(snapshot.late_drops == 0, "no late datagrams",
               snapshot.late_drops, 0);
        expect(snapshot.datagrams == datagrams.size(),
               "every datagram ingested", snapshot.datagrams,
               datagrams.size());
        expect(snapshot.samples == total_samples, "every sample collected",
               snapshot.samples, total_samples);
        if (const auto* decode = stage_named(snapshot, "decode")) {
          expect(decode->items_out ==
                     snapshot.datagrams + snapshot.bgp_updates,
                 "decode out == datagrams + bgp", decode->items_out,
                 snapshot.datagrams + snapshot.bgp_updates);
        }
        if (const auto* score = stage_named(snapshot, "score")) {
          expect(score->items_in == snapshot.minutes_merged,
                 "every merged minute scored", score->items_in,
                 snapshot.minutes_merged);
        }
        if (!have_reference) {
          have_reference = true;
          reference_flows = snapshot.flows_out;
          reference_minutes = snapshot.minutes_merged;
        } else {
          // Determinism: every configuration sees the same stream.
          expect(snapshot.flows_out == reference_flows,
                 "flows_out identical across configs", snapshot.flows_out,
                 reference_flows);
          expect(snapshot.minutes_merged == reference_minutes,
                 "minutes identical across configs", snapshot.minutes_merged,
                 reference_minutes);
        }

        if (rep == 0 ||
            snapshot.flows_per_sec() > result.snapshot.flows_per_sec()) {
          result.snapshot = snapshot;
        }
      }
      runs.push_back(std::move(result));
    }
  }

  for (const RunResult& run : runs) {
    const runtime::EngineSnapshot& best = run.snapshot;
    if (run.batch_records == 1 && run.shards == 1) {
      baseline_flows_per_sec = best.flows_per_sec();
    }
    const double speedup = baseline_flows_per_sec > 0.0
                               ? best.flows_per_sec() / baseline_flows_per_sec
                               : 0.0;
    char wall[32], rate[32], ratio[32];
    std::snprintf(wall, sizeof(wall), "%.3f", best.wall_seconds);
    std::snprintf(rate, sizeof(rate), "%.0f", best.flows_per_sec());
    std::snprintf(ratio, sizeof(ratio), "%.2f", speedup);
    table.add_row({std::to_string(run.batch_records),
                   std::to_string(run.shards), wall, rate, ratio,
                   run.advisory ? "yes" : ""});

    util::Json row;
    row.set("shards", static_cast<double>(run.shards));
    row.set("batch_records", static_cast<double>(run.batch_records));
    row.set("advisory", run.advisory);
    row.set("wall_seconds", best.wall_seconds);
    row.set("flows_per_sec", best.flows_per_sec());
    row.set("flows", static_cast<double>(best.flows_out));
    row.set("minutes", static_cast<double>(best.minutes_merged));
    row.set("speedup_vs_baseline", speedup);
    util::JsonArray stages;
    for (const auto& stage : best.stages) {
      util::Json item;
      item.set("name", stage.name);
      item.set("items_in", static_cast<double>(stage.items_in));
      item.set("items_out", static_cast<double>(stage.items_out));
      item.set("drops", static_cast<double>(stage.drops));
      item.set("queue_highwater", static_cast<double>(stage.queue_highwater));
      item.set("busy_seconds", stage.busy_seconds);
      stages.push_back(std::move(item));
    }
    row.set("stages", std::move(stages));
    results.push_back(std::move(row));
  }
  std::printf("%s", table.render().c_str());

  util::Json out;
  out.set("bench", "runtime_throughput");
  bench::set_provenance(out);
  out.set("profile", "IXP-SE");
  out.set("smoke", smoke);
  out.set("trace_minutes", static_cast<double>(kMinutes));
  out.set("sampling_rate", static_cast<double>(kSampling));
  out.set("seed", static_cast<double>(kSeed));
  out.set("hardware_concurrency", static_cast<double>(hardware));
  out.set("results", std::move(results));
  // The smoke run is a correctness gate, not a perf record — don't
  // overwrite the trajectory file with tiny-trace numbers.
  if (!smoke) {
    std::ofstream file("BENCH_runtime.json");
    file << out.dump(2) << "\n";
    std::printf("\nwrote BENCH_runtime.json (hardware_concurrency=%u)\n",
                hardware);
  }
  if (failures != 0) {
    std::fprintf(stderr, "\n%d conservation check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("all conservation checks passed\n");
  return 0;
}
