#pragma once
// The pre-partition histogram GBT builder, embedded verbatim as the
// bit-identity oracle for the current engine (src/ml/gbt.cpp) — the same
// pattern as the scalar hotpath baselines in bench/hotpath.cpp: the
// historical algorithm lives on in test/bench code so every refactor of
// the production engine can prove "same model bytes" against it rather
// than against a remembered claim.
//
// This is the seed engine's fit() loop: per-column u16 binning with
// `std::upper_bound` assignment (missing folds into -1.0 — the legacy
// MissingPolicy::kMinusOne mapping, the only policy this oracle models),
// full global row scans per (level, feature) gated on a node_slot lookup,
// split-nested `hist_g`/`hist_h` buffers re-assigned per feature, and
// bin-based row routing. Only the wrapper differs: the algorithm is a
// free function returning {trees, base_margin, importance} so callers
// rebuild a model via GradientBoostedTrees::restore() and compare
// serialized bytes (util::gbt_to_json(...).dump()).
//
// Used by tests/ml/gbt_oracle_test.cpp and bench/training.cpp. Do not
// "improve" this code — its value is being frozen.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/gbt.hpp"
#include "util/thread_pool.hpp"

namespace scrubber::bench_oracle {

/// Everything fit() produces that reaches the serialized model.
struct OracleModel {
  std::vector<ml::GradientBoostedTrees::Tree> trees;
  double base_margin = 0.0;
  std::vector<ml::FeatureGain> importance;
};

namespace detail {

[[nodiscard]] inline double sigmoid(double x) noexcept {
  return 1.0 / (1.0 + std::exp(-x));
}

/// Quantile bin edges and a binned column-major copy of the training data.
/// (Seed engine: always u16 codes, missing mapped to -1.0, per-row
/// std::upper_bound assignment, per-column `values` + `sorted` buffers.)
class BinnedMatrix {
 public:
  BinnedMatrix(const ml::Dataset& data, std::size_t max_bins) {
    rows_ = data.n_rows();
    cols_ = data.n_cols();
    edges_.resize(cols_);
    binned_.resize(rows_ * cols_);

    util::training_pool().parallel_for_chunks(
        cols_, [&](std::size_t, std::size_t col_begin, std::size_t col_end) {
          std::vector<double> values;
          values.reserve(rows_);
          for (std::size_t j = col_begin; j < col_end; ++j) {
            values.clear();
            for (std::size_t i = 0; i < rows_; ++i) {
              const double v = data.at(i, j);
              values.push_back(ml::is_missing(v) ? -1.0 : v);
            }
            std::vector<double> sorted = values;
            std::sort(sorted.begin(), sorted.end());
            sorted.erase(std::unique(sorted.begin(), sorted.end()),
                         sorted.end());

            auto& edges = edges_[j];
            if (sorted.size() <= max_bins) {
              // One bin per distinct value; edges are midpoints.
              for (std::size_t k = 0; k + 1 < sorted.size(); ++k)
                edges.push_back((sorted[k] + sorted[k + 1]) / 2.0);
            } else {
              for (std::size_t b = 1; b < max_bins; ++b) {
                const std::size_t idx = b * sorted.size() / max_bins;
                const double edge = sorted[idx];
                if (edges.empty() || edge > edges.back()) edges.push_back(edge);
              }
            }
            // Bin assignment: bin = count of edges <= value (upper_bound).
            for (std::size_t i = 0; i < rows_; ++i) {
              const auto it =
                  std::upper_bound(edges.begin(), edges.end(), values[i]);
              binned_[j * rows_ + i] =
                  static_cast<std::uint16_t>(std::distance(edges.begin(), it));
            }
          }
        });
  }

  [[nodiscard]] std::uint16_t bin(std::size_t row,
                                  std::size_t col) const noexcept {
    return binned_[col * rows_ + row];
  }
  [[nodiscard]] std::size_t bin_count(std::size_t col) const noexcept {
    return edges_[col].size() + 1;
  }
  /// Raw-value threshold of splitting "bin <= b" on column `col`.
  [[nodiscard]] double edge_value(std::size_t col,
                                  std::size_t b) const noexcept {
    return edges_[col][b];
  }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::vector<double>> edges_;  // per column, ascending
  std::vector<std::uint16_t> binned_;       // column-major bins
};

struct SplitChoice {
  double gain = 0.0;
  std::size_t feature = 0;
  std::size_t bin = 0;  // split: bin <= this goes left
  bool valid = false;
};

}  // namespace detail

/// The seed engine's GradientBoostedTrees::fit(), verbatim modulo the
/// free-function wrapper. Honors util::set_training_threads like the
/// production engine; its output is thread-count independent.
[[nodiscard]] inline OracleModel fit_oracle(const ml::Dataset& data,
                                            const ml::GbtParams& params) {
  using ml::GradientBoostedTrees;
  using Node = GradientBoostedTrees::Node;
  using Tree = GradientBoostedTrees::Tree;
  using detail::BinnedMatrix;
  using detail::SplitChoice;

  OracleModel out;
  out.importance.assign(data.n_cols(), ml::FeatureGain{});
  for (std::size_t j = 0; j < data.n_cols(); ++j) out.importance[j].feature = j;

  const std::size_t n = data.n_rows();
  if (n == 0) return out;
  // Initialize the margin at the log-odds of the base rate.
  const double pos = static_cast<double>(data.positive_count());
  const double base_rate =
      std::clamp(pos / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
  out.base_margin = std::log(base_rate / (1.0 - base_rate));

  const BinnedMatrix binned(data, params.max_bins);

  std::vector<double> margin(n, out.base_margin);
  std::vector<double> grad(n), hess(n);
  std::vector<std::size_t> row_node(n);  // node id each row currently sits in

  util::ThreadPool& pool = util::training_pool();

  for (std::size_t round = 0; round < params.n_estimators; ++round) {
    // Per-row slots: thread-count independent by construction.
    pool.parallel_for(n, [&](std::size_t i) {
      const double p = detail::sigmoid(margin[i]);
      grad[i] = p - static_cast<double>(data.label(i));
      hess[i] = std::max(p * (1.0 - p), 1e-16);
    });

    Tree tree;
    tree.push_back(Node{});
    std::fill(row_node.begin(), row_node.end(), std::size_t{0});
    std::vector<std::size_t> frontier{0};  // node ids open at current depth

    for (std::size_t depth = 0; depth < params.max_depth && !frontier.empty();
         ++depth) {
      // Histograms per open node: G and H per (feature, bin).
      const std::size_t open = frontier.size();
      std::vector<std::size_t> node_slot(
          tree.size(), std::numeric_limits<std::size_t>::max());
      for (std::size_t s = 0; s < open; ++s) node_slot[frontier[s]] = s;

      std::vector<double> node_g(open, 0.0), node_h(open, 0.0);
      std::vector<std::size_t> node_rows(open, 0);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t slot = node_slot[row_node[i]];
        if (slot == std::numeric_limits<std::size_t>::max()) continue;
        node_g[slot] += grad[i];
        node_h[slot] += hess[i];
        ++node_rows[slot];
      }

      // Per-feature pass: build histograms for all open nodes at once,
      // fanned out over contiguous feature chunks.
      const std::size_t n_chunks = pool.plan_chunks(binned.cols());
      std::vector<std::vector<SplitChoice>> chunk_best(
          n_chunks, std::vector<SplitChoice>(open));
      pool.parallel_for_chunks(
          binned.cols(),
          [&](std::size_t chunk, std::size_t f_begin, std::size_t f_end) {
            std::vector<SplitChoice>& local_best = chunk_best[chunk];
            std::vector<double> hist_g, hist_h;
            for (std::size_t feature = f_begin; feature < f_end; ++feature) {
              const std::size_t bins = binned.bin_count(feature);
              if (bins <= 1) continue;
              hist_g.assign(open * bins, 0.0);
              hist_h.assign(open * bins, 0.0);
              for (std::size_t i = 0; i < n; ++i) {
                const std::size_t slot = node_slot[row_node[i]];
                if (slot == std::numeric_limits<std::size_t>::max()) continue;
                const std::size_t b = binned.bin(i, feature);
                hist_g[slot * bins + b] += grad[i];
                hist_h[slot * bins + b] += hess[i];
              }
              for (std::size_t s = 0; s < open; ++s) {
                const double g_total = node_g[s];
                const double h_total = node_h[s];
                const double parent_score =
                    g_total * g_total / (h_total + params.reg_lambda);
                double gl = 0.0, hl = 0.0;
                for (std::size_t b = 0; b + 1 < bins; ++b) {
                  gl += hist_g[s * bins + b];
                  hl += hist_h[s * bins + b];
                  const double gr = g_total - gl;
                  const double hr = h_total - hl;
                  if (hl < params.min_child_weight ||
                      hr < params.min_child_weight)
                    continue;
                  const double gain =
                      0.5 * (gl * gl / (hl + params.reg_lambda) +
                             gr * gr / (hr + params.reg_lambda) -
                             parent_score) -
                      params.gamma;
                  if (gain > local_best[s].gain) {
                    local_best[s] = SplitChoice{gain, feature, b, true};
                  }
                }
              }
            }
          });
      std::vector<SplitChoice> best(open);
      for (std::size_t chunk = 0; chunk < n_chunks; ++chunk) {
        for (std::size_t s = 0; s < open; ++s) {
          if (chunk_best[chunk][s].gain > best[s].gain) {
            best[s] = chunk_best[chunk][s];
          }
        }
      }

      // Materialize accepted splits; rows are reassigned to child nodes.
      std::vector<std::size_t> next_frontier;
      std::vector<std::int32_t> left_of(open, -1);
      for (std::size_t s = 0; s < open; ++s) {
        const std::size_t node_id = frontier[s];
        if (!best[s].valid || node_rows[s] < 2) continue;
        const auto left = static_cast<std::int32_t>(tree.size());
        {
          Node& node = tree[node_id];
          node.feature = static_cast<std::uint32_t>(best[s].feature);
          node.threshold = binned.edge_value(best[s].feature, best[s].bin);
          node.left = left;
          node.right = left + 1;
        }  // reference dies before push_back may reallocate the vector
        left_of[s] = left;
        tree.push_back(Node{});
        tree.push_back(Node{});
        next_frontier.push_back(static_cast<std::size_t>(left));
        next_frontier.push_back(static_cast<std::size_t>(left + 1));
        auto& gain_entry = out.importance[best[s].feature];
        gain_entry.total_gain += best[s].gain;
        ++gain_entry.split_count;
      }
      if (next_frontier.empty()) break;

      // Route rows to children. The split stored a raw-value threshold, but
      // during training we route via bins for exactness.
      std::vector<std::size_t> split_bin(open), split_feature(open);
      for (std::size_t s = 0; s < open; ++s) {
        split_bin[s] = best[s].bin;
        split_feature[s] = best[s].feature;
      }
      pool.parallel_for(n, [&](std::size_t i) {
        const std::size_t slot = node_slot[row_node[i]];
        if (slot == std::numeric_limits<std::size_t>::max() ||
            left_of[slot] < 0)
          return;
        const bool goes_left =
            binned.bin(i, split_feature[slot]) <= split_bin[slot];
        row_node[i] =
            static_cast<std::size_t>(left_of[slot] + (goes_left ? 0 : 1));
      });
      frontier = std::move(next_frontier);
    }

    // Leaf weights: w = -G / (H + lambda), shrunk by the learning rate.
    std::vector<double> leaf_g(tree.size(), 0.0), leaf_h(tree.size(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      leaf_g[row_node[i]] += grad[i];
      leaf_h[row_node[i]] += hess[i];
    }
    for (std::size_t t = 0; t < tree.size(); ++t) {
      if (tree[t].is_leaf()) {
        tree[t].value = -params.learning_rate * leaf_g[t] /
                        (leaf_h[t] + params.reg_lambda);
      }
    }
    for (std::size_t i = 0; i < n; ++i) margin[i] += tree[row_node[i]].value;
    out.trees.push_back(std::move(tree));
  }
  return out;
}

/// Rebuilds a scorable model from the oracle's raw output (the same
/// restore path model_io uses), so serialized bytes compare 1:1 with a
/// production fit under identical params.
[[nodiscard]] inline ml::GradientBoostedTrees restore_oracle(
    const ml::Dataset& data, const ml::GbtParams& params) {
  OracleModel raw = fit_oracle(data, params);
  ml::GradientBoostedTrees model(params);
  model.restore(std::move(raw.trees), raw.base_margin, params,
                std::move(raw.importance));
  return model;
}

}  // namespace scrubber::bench_oracle
