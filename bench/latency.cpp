// Detection latency — end-to-end wire-path latency of the streaming
// scrubber: sFlow datagrams leave an open-loop load generator over UDP
// loopback, cross src/netio's batched listener into the engine, and the
// clock stops when the datagram's minute has been scored and ingested by
// the live detector. Swept over {target rate} x {engine batch} x {shards};
// per-row latency distributions (p50/p99/p99.9) plus achieved flows/sec
// land in BENCH_latency.json.
//
// Open loop matters here (DESIGN.md §11): the send schedule is drawn up
// front at the target rate and never waits for the receiver, so a slow
// configuration shows up as a latency tail, not as silently reduced load.
// Rate 0 rows send as fast as loopback accepts — a burst test where
// kernel socket-buffer drops are possible and *reported* (the row is
// marked lossy) rather than hidden.
//
// Every lossless row is also an equivalence probe: the verdict stream
// (every detection, formatted) and the flow/minute/sample counts must be
// bit-identical to an in-process feed of the same trace — push(datagram)
// with no wire in between. Any mismatch or conservation failure exits
// non-zero. `--smoke` shrinks the sweep (CI-sized) while keeping the
// equivalence assertion; that is the mode the perf-smoke CI job runs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "../bench/common.hpp"
#include "core/collector.hpp"
#include "core/live_detector.hpp"
#include "netio/listener.hpp"
#include "netio/loadgen.hpp"
#include "runtime/engine.hpp"
#include "util/json.hpp"

namespace {

using namespace scrubber;

int failures = 0;

void expect(bool ok, const char* what) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr, "FAIL: %s\n", what);
}

/// Detector setup shared by the wire runs and the in-process reference —
/// verdicts can only be bit-identical if both sides train and score the
/// same way. Short warmup so the detector actually scores the tail of the
/// bench-sized trace.
core::LiveDetectorConfig detector_config() {
  core::LiveDetectorConfig config;
  config.warmup_min = 10;
  config.retrain_interval_min = 60;
  config.min_flows_per_target = 8;
  config.seed = 0xD43;
  config.agg_threads = 1;
  return config;
}

std::string format_detection(const core::Detection& detection) {
  char line[160];
  std::snprintf(line, sizeof(line), "minute=%u target=%s score=%.9f flows=%u",
                detection.minute, detection.target.to_string().c_str(),
                detection.score, detection.flow_count);
  std::string out = line;
  if (detection.vector) {
    out += " vector=";
    out += net::vector_name(*detection.vector);
  }
  return out;
}

/// What both feed paths must agree on, bit for bit.
struct Verdicts {
  std::vector<std::string> detections;
  std::uint64_t flows_out = 0;
  std::uint64_t minutes_merged = 0;
  std::uint64_t samples = 0;

  bool operator==(const Verdicts&) const = default;
};

runtime::EngineConfig engine_config(std::size_t shards,
                                    std::size_t batch_records, bool pooled) {
  runtime::EngineConfig config;
  config.shards = shards;
  config.queue_capacity = 4096;
  config.batch_records = batch_records;
  config.backpressure = runtime::Backpressure::kBlock;
  config.collector.sampling_rate = 4;
  if (pooled) {
    // Zero-allocation ingest: receivers scatter into pooled slots and the
    // fused decode→route walks them in place (the production shape).
    config.wire_pool_slots = 4096;
    config.wire_slot_bytes = 8192;
  }
  return config;
}

/// In-process reference: same trace, same engine/detector shape, no wire.
Verdicts reference_verdicts(
    const std::vector<net::SflowDatagram>& datagrams,
    const std::vector<std::pair<std::uint32_t, bgp::UpdateMessage>>& updates,
    std::size_t shards, std::size_t batch_records) {
  Verdicts verdicts;
  core::LiveDetector detector(detector_config(),
                              [&](const core::Detection& detection) {
                                verdicts.detections.push_back(
                                    format_detection(detection));
                              });
  runtime::Engine engine(
      engine_config(shards, batch_records, /*pooled=*/false),
      [&](std::uint32_t minute, std::span<const net::FlowRecord> flows) {
        detector.ingest_minute(minute, flows);
      });
  std::size_t next_update = 0;
  for (const auto& datagram : datagrams) {
    const auto minute = static_cast<std::uint32_t>(datagram.uptime_ms / 60'000);
    while (next_update < updates.size() &&
           updates[next_update].first <= minute) {
      engine.push_bgp(updates[next_update].second,
                      std::uint64_t{updates[next_update].first} * 60'000);
      ++next_update;
    }
    engine.push(datagram);
  }
  engine.finish();
  const runtime::EngineSnapshot snapshot = engine.stats();
  verdicts.flows_out = snapshot.flows_out;
  verdicts.minutes_merged = snapshot.minutes_merged;
  verdicts.samples = snapshot.samples;
  return verdicts;
}

struct WireRow {
  double target_rate = 0.0;
  std::size_t batch_records = 0;
  std::size_t shards = 0;
  bool pooled = false;
  bool advisory = false;

  // Wire-to-verdict latency: send() completing → the datagram's export
  // minute scored and ingested by the detector.
  double p50_ms = 0.0, p99_ms = 0.0, p999_ms = 0.0, max_ms = 0.0;
  double achieved_send_rate = 0.0;  ///< datagrams/s the generator delivered
  double flows_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t sent = 0, received = 0;
  std::uint64_t kernel_drops = 0, ring_drops = 0, behind = 0;
  std::uint64_t pool_fallbacks = 0, pool_highwater = 0, pool_exhausted = 0;
  bool lossless = false;
  bool verdicts_match = false;
  std::string backend;
};

/// One wire run: loopback listener + engine + detector on one side, the
/// open-loop generator on the other (this thread). Latency of a datagram
/// is the time from its send() completing to its export minute having been
/// scored and ingested by the detector.
WireRow run_wire(
    const std::vector<std::vector<std::uint8_t>>& wire,
    const std::vector<std::uint32_t>& wire_minutes,
    const std::vector<std::pair<std::uint32_t, bgp::UpdateMessage>>& updates,
    const Verdicts& reference, double target_rate, std::size_t batch_records,
    std::size_t shards, bool pooled, unsigned hardware) {
  WireRow row;
  row.target_rate = target_rate;
  row.batch_records = batch_records;
  row.shards = shards;
  row.pooled = pooled;
  row.advisory = shards > hardware;

  Verdicts verdicts;
  // minute -> steady-clock ns at which that minute finished scoring;
  // written only by the engine's score thread, read after join().
  std::vector<std::uint64_t> completion_ns;
  core::LiveDetector detector(detector_config(),
                              [&](const core::Detection& detection) {
                                verdicts.detections.push_back(
                                    format_detection(detection));
                              });
  runtime::Engine engine(
      engine_config(shards, batch_records, pooled),
      [&](std::uint32_t minute, std::span<const net::FlowRecord> flows) {
        detector.ingest_minute(minute, flows);
        if (completion_ns.size() <= minute) completion_ns.resize(minute + 1);
        completion_ns[minute] = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
      });

  std::size_t next_update = 0;
  netio::ListenerConfig listener_config;
  listener_config.port = 0;  // kernel-assigned; the generator reads port()
  listener_config.batch_msgs = 64;
  listener_config.rcvbuf_bytes = 1 << 23;
  listener_config.idle_stop_ms = 20'000;  // lost-FIN safety net
  netio::UdpListener listener(
      listener_config, engine, [&](std::uint32_t minute) {
        while (next_update < updates.size() &&
               updates[next_update].first <= minute) {
          engine.push_bgp(updates[next_update].second,
                          std::uint64_t{updates[next_update].first} * 60'000);
          ++next_update;
        }
      });
  listener.start();

  netio::LoadGenConfig loadgen_config;
  loadgen_config.port = listener.port();
  loadgen_config.rate = target_rate;
  loadgen_config.seed = 0xBEA7;
  netio::LoadGenerator loadgen(loadgen_config, wire, wire_minutes);
  const netio::LoadGenSummary send_summary = loadgen.run();
  listener.join();  // returns once the FIN sentinel finished the engine

  const runtime::EngineSnapshot snapshot = engine.stats();
  const netio::ListenerSnapshot listen = listener.stats();
  verdicts.flows_out = snapshot.flows_out;
  verdicts.minutes_merged = snapshot.minutes_merged;
  verdicts.samples = snapshot.samples;

  row.sent = send_summary.sent;
  row.received = listen.stage.items_in;
  row.kernel_drops = listen.kernel_drops;
  row.ring_drops = listen.stage.drops;
  row.behind = send_summary.behind;
  row.achieved_send_rate = send_summary.achieved_rate;
  row.flows_per_sec = snapshot.flows_per_sec();
  row.wall_seconds = snapshot.wall_seconds;
  row.backend = listen.backend;
  row.pool_fallbacks = listen.pool_fallbacks;
  row.pool_highwater = snapshot.pool_highwater;
  row.pool_exhausted = snapshot.pool_exhausted;
  row.lossless = row.received == row.sent && row.ring_drops == 0 &&
                 snapshot.decode_errors == 0;
  row.verdicts_match = verdicts == reference;

  // Per-datagram detection latency: minute completion - send stamp.
  std::vector<double> latencies_ms;
  latencies_ms.reserve(loadgen.stamps().size());
  for (const auto& stamp : loadgen.stamps()) {
    if (stamp.minute >= completion_ns.size() ||
        completion_ns[stamp.minute] == 0 ||
        completion_ns[stamp.minute] < stamp.send_ns) {
      continue;  // minute lost on a lossy row (or clock ties)
    }
    latencies_ms.push_back(
        static_cast<double>(completion_ns[stamp.minute] - stamp.send_ns) /
        1e6);
  }
  if (!latencies_ms.empty()) {
    row.p50_ms = util::quantile(latencies_ms, 0.50);
    row.p99_ms = util::quantile(latencies_ms, 0.99);
    row.p999_ms = util::quantile(latencies_ms, 0.999);
    row.max_ms = *std::max_element(latencies_ms.begin(), latencies_ms.end());
  }

  expect(listen.fin_seen, "FIN sentinel reached the listener");
  expect(listen.expected_datagrams == row.sent,
         "sentinel total matches datagrams sent");
  // Accounting identity: everything received is either a decoded datagram,
  // a counted decode error, or a counted ring drop.
  expect(snapshot.datagrams + snapshot.decode_errors + row.ring_drops ==
             row.received,
         "received == decoded + decode_errors + ring_drops");
  if (row.lossless) {
    expect(row.verdicts_match,
           "lossless wire verdicts bit-identical to in-process feed");
  } else {
    std::fprintf(stderr,
                 "note: lossy row (rate=%.0f batch=%zu shards=%zu): "
                 "%llu/%llu received, kernel_drops=%llu — equivalence "
                 "not required\n",
                 target_rate, batch_records, shards,
                 static_cast<unsigned long long>(row.received),
                 static_cast<unsigned long long>(row.sent),
                 static_cast<unsigned long long>(row.kernel_drops));
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::print_header("Latency",
                      "wire-path detection latency (rate x batch x shards)");
  bench::print_expectation(
      "p99 rises with offered rate; batching trades per-datagram latency "
      "for throughput; wire verdicts match in-process verdicts bit for bit");

  // One fixed trace for every row, pre-encoded so neither generation nor
  // encoding pollutes the send schedule.
  const std::uint32_t kMinutes = smoke ? 20 : 120;
  constexpr std::uint32_t kSampling = 4;
  constexpr std::uint64_t kSeed = 1337;
  flowgen::TrafficGenerator generator(flowgen::ixp_se(), kSeed);
  const auto trace = generator.generate(0, kMinutes);
  const auto datagrams = core::flows_to_datagrams(
      trace.flows, kSampling, net::Ipv4Address(0x0AFF0001));
  std::vector<std::vector<std::uint8_t>> wire;
  std::vector<std::uint32_t> wire_minutes;
  wire.reserve(datagrams.size());
  for (const auto& datagram : datagrams) {
    wire.push_back(datagram.encode());
    wire_minutes.push_back(
        static_cast<std::uint32_t>(datagram.uptime_ms / 60'000));
  }
  std::printf("trace: %zu flows, %zu datagrams, %zu BGP updates, %u min%s\n\n",
              trace.flows.size(), datagrams.size(), trace.updates.size(),
              kMinutes, smoke ? " [smoke]" : "");

  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 4000.0}
            : std::vector<double>{0.0, 2000.0, 8000.0};
  const std::vector<std::size_t> batch_counts =
      smoke ? std::vector<std::size_t>{256}
            : std::vector<std::size_t>{1, 256};
  const std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1} : std::vector<std::size_t>{1, 2};
  // Pooled (zero-allocation scatter + fused decode→route) vs the copying
  // vector path, same sweep — the wire-to-verdict columns line up row for
  // row so the trajectory shows what the pool buys end to end.
  const std::vector<bool> pooled_modes = {false, true};

  // The reference verdict stream is configuration-independent (the
  // engine's determinism contract), so one in-process run anchors every
  // wire row.
  const Verdicts reference =
      reference_verdicts(datagrams, trace.updates, 1, 256);
  std::printf("reference (in-process): %zu detections, %llu flows, "
              "%llu minutes\n\n",
              reference.detections.size(),
              static_cast<unsigned long long>(reference.flows_out),
              static_cast<unsigned long long>(reference.minutes_merged));

  util::TextTable table;
  table.set_header({"rate", "batch", "shards", "pooled", "w2v_p50_ms",
                    "w2v_p99_ms", "w2v_p99.9_ms", "flows/s", "lossless",
                    "match"});
  util::JsonArray results;
  for (const double rate : rates) {
    for (const std::size_t batch_records : batch_counts) {
      for (const std::size_t shards : shard_counts) {
        for (const bool pooled : pooled_modes) {
          const WireRow row =
              run_wire(wire, wire_minutes, trace.updates, reference, rate,
                       batch_records, shards, pooled, hardware);
          char rate_text[32], p50[32], p99[32], p999[32], fps[32];
          std::snprintf(rate_text, sizeof(rate_text), "%.0f", row.target_rate);
          std::snprintf(p50, sizeof(p50), "%.2f", row.p50_ms);
          std::snprintf(p99, sizeof(p99), "%.2f", row.p99_ms);
          std::snprintf(p999, sizeof(p999), "%.2f", row.p999_ms);
          std::snprintf(fps, sizeof(fps), "%.0f", row.flows_per_sec);
          table.add_row({row.target_rate == 0.0 ? "max" : rate_text,
                         std::to_string(row.batch_records),
                         std::to_string(row.shards),
                         row.pooled ? "yes" : "no", p50, p99, p999, fps,
                         row.lossless ? "yes" : "NO",
                         row.verdicts_match ? "yes" : "NO"});

          util::Json item;
          item.set("target_rate", row.target_rate);
          item.set("achieved_send_rate", row.achieved_send_rate);
          item.set("batch_records", static_cast<double>(row.batch_records));
          item.set("shards", static_cast<double>(row.shards));
          item.set("pooled", row.pooled);
          item.set("advisory", row.advisory);
          item.set("backend", row.backend);
          // Wire-to-verdict latency quantiles (send → minute scored).
          item.set("p50_ms", row.p50_ms);
          item.set("p99_ms", row.p99_ms);
          item.set("p999_ms", row.p999_ms);
          item.set("max_ms", row.max_ms);
          item.set("flows_per_sec", row.flows_per_sec);
          item.set("wall_seconds", row.wall_seconds);
          item.set("sent", static_cast<double>(row.sent));
          item.set("received", static_cast<double>(row.received));
          item.set("kernel_drops", static_cast<double>(row.kernel_drops));
          item.set("ring_drops", static_cast<double>(row.ring_drops));
          item.set("behind_deadline", static_cast<double>(row.behind));
          item.set("pool_fallbacks", static_cast<double>(row.pool_fallbacks));
          item.set("pool_highwater", static_cast<double>(row.pool_highwater));
          item.set("pool_exhausted", static_cast<double>(row.pool_exhausted));
          item.set("lossless", row.lossless);
          item.set("verdicts_match", row.verdicts_match);
          results.push_back(std::move(item));
        }
      }
    }
  }
  std::printf("%s", table.render().c_str());

  util::Json out;
  out.set("bench", "latency");
  bench::set_provenance(out);
  out.set("profile", "IXP-SE");
  out.set("smoke", smoke);
  out.set("trace_minutes", static_cast<double>(kMinutes));
  out.set("sampling_rate", static_cast<double>(kSampling));
  out.set("seed", static_cast<double>(kSeed));
  out.set("reference_detections",
          static_cast<double>(reference.detections.size()));
  out.set("results", std::move(results));
  // The smoke run is a correctness gate, not a perf record — don't
  // overwrite the trajectory file with tiny-trace numbers.
  if (!smoke) {
    std::ofstream file("BENCH_latency.json");
    file << out.dump(2) << "\n";
    std::printf("\nwrote BENCH_latency.json (hardware_concurrency=%u)\n",
                hardware);
  }
  if (failures != 0) {
    std::fprintf(stderr, "\n%d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("all equivalence and accounting checks passed\n");
  return 0;
}
