// Figure 3a — CDF of the blackholing traffic share (bytes) per minute bin,
// one simulated week per IXP. Paper: the share never exceeds ~0.8% of
// total traffic and is below 0.1% in 90% of minute bins.

#include "../bench/common.hpp"

int main() {
  using namespace scrubber;
  bench::print_header("Figure 3a", "share of blackholing traffic vs total");
  bench::print_expectation(
      "blackhole byte share < ~1% at every IXP; large majority of minute "
      "bins below 0.1-0.3%");

  constexpr std::uint32_t kWeek = 7 * 24 * 60;
  util::TextTable table;
  table.set_header({"site", "p50", "p90", "p99", "max", "bins<0.1%"});

  std::uint64_t seed = 420;
  std::vector<double> merged;
  for (flowgen::IxpProfile profile : flowgen::all_ixp_profiles()) {
    // The 1:300 flow downscaling of the standard profiles shrinks benign
    // volume but not per-attack intensity, which would inflate the share.
    // For this *measurement* we restore a closer-to-reality ratio: denser
    // benign background, thinner attack tail (attack counts don't matter
    // here, only byte shares).
    profile.benign_flows_per_minute *= 4.0;
    profile.attack_flows_per_minute_scale *= 0.5;
    profile.attack_flows_per_minute_shape = 2.2;  // thin heavy tail
    // One simulated week (shorter for the giant CE1 to bound runtime).
    const std::uint32_t minutes =
        profile.benign_flows_per_minute > 4000.0 ? kWeek / 4 : kWeek / 2;
    const auto trace = bench::make_balanced(profile, seed++, 0, minutes);

    std::vector<double> shares;
    shares.reserve(trace.minutes.size());
    std::size_t below = 0;
    for (const auto& stats : trace.minutes) {
      const double share = stats.blackhole_byte_share();
      shares.push_back(share);
      merged.push_back(share);
      below += (share < 0.001);
    }
    table.add_row({profile.name, util::fmt_pct(util::quantile(shares, 0.5), 3),
                   util::fmt_pct(util::quantile(shares, 0.9), 3),
                   util::fmt_pct(util::quantile(shares, 0.99), 3),
                   util::fmt_pct(util::quantile(shares, 1.0), 3),
                   util::fmt_pct(static_cast<double>(below) /
                                 static_cast<double>(shares.size()))});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nCDF of per-minute blackhole byte share, all sites merged:\n");
  const auto sorted = util::ecdf_points(merged);
  for (const double share : {0.0, 0.0001, 0.0005, 0.001, 0.002, 0.005, 0.01}) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), share);
    const double cdf = static_cast<double>(it - sorted.begin()) /
                       static_cast<double>(sorted.size());
    std::printf("  share <= %7s  CDF %6s  |%s|\n",
                util::fmt_pct(share, 2).c_str(), util::fmt_pct(cdf, 1).c_str(),
                util::bar(cdf, 40).c_str());
  }
  return 0;
}
