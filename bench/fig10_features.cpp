// Figure 10 — XGB features with the highest average gain over all splits
// (notation categorical/metric/rank, Figure 7). Paper: the top features
// mix stable vector properties (ports, packet sizes, protocol) with
// drift-prone ones (source IPs / reflectors).

#include "../bench/common.hpp"

#include "ml/gbt.hpp"

int main() {
  using namespace scrubber;
  bench::print_header("Figure 10", "top XGB features by average gain");
  bench::print_expectation(
      "port/packet-size/protocol rankings and source-IP (reflector) WoE "
      "features dominate the gain ranking");

  std::vector<net::FlowRecord> flows;
  std::uint64_t seed = 1000;
  for (const auto& profile : {flowgen::ixp_ce1(), flowgen::ixp_us1()}) {
    const auto trace = bench::make_balanced(profile, seed++, 0, 24 * 60);
    flows.insert(flows.end(), trace.flows.begin(), trace.flows.end());
  }
  core::IxpScrubber scrubber;
  scrubber.set_rules(arm::RuleSet{});
  const auto aggregated = scrubber.aggregate(flows);
  scrubber.train(aggregated);

  const auto& gbt =
      dynamic_cast<const ml::GradientBoostedTrees&>(scrubber.pipeline().classifier());
  const auto importance = gbt.gain_importance();

  double max_gain = 0.0;
  for (const auto& g : importance) max_gain = std::max(max_gain, g.average_gain());

  util::TextTable table;
  table.set_header({"feature (cat/metric/rank)", "avg gain", "splits", ""});
  for (std::size_t i = 0; i < importance.size() && i < 10; ++i) {
    const auto& g = importance[i];
    table.add_row({aggregated.data.column(g.feature).name,
                   util::fmt(g.average_gain(), 2),
                   util::fmt_count(g.split_count),
                   util::bar(g.average_gain() / max_gain, 30)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
