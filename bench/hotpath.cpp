// Flow hot-path throughput — wall time of the two per-minute serving-path
// kernels after the flat-container rewrite, against the pre-rewrite
// implementations embedded here as baselines:
//
//   flowcache   sampled-packet ingestion + minute drain. Baseline: the
//               node-based std::unordered_map cache with an explicit
//               insertion-order counter and a sort-on-drain. Rewrite:
//               util::FlatHash (dense insertion-ordered entries, drains
//               are one forward pass, zero per-flow allocation).
//   aggregate   per-(minute, target) feature build. Baseline: std::map
//               group-by + fresh unordered_map tallies + a full sort per
//               (categorical, metric) ranking. Rewrite: one index sort,
//               reused flat tallies, bounded top-k selection, and a
//               parallel per-group feature build (bit-identical at any
//               thread count, DESIGN.md §10).
//
// Sweep: {flow count} x {threads}. Results land in BENCH_hotpath.json.
// Expectation: >= 2x single-thread aggregate speedup over the embedded
// baseline, near-linear feature-build scaling to 4 threads on a
// multi-core host.
//
// Every run is also a correctness probe: the baseline outputs are the
// oracle. Flat drains must equal baseline drains record-for-record, the
// rewritten aggregate must be byte-equal (memcmp over the matrix) with
// the baseline at 1 thread and with itself at every other thread count,
// and drained flows must conserve the sampled packet count. `--smoke`
// shrinks the workload while keeping all the assertions — the mode the
// perf-smoke CI job runs (no JSON write: tiny-trace numbers must not
// overwrite the trajectory).

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "../bench/common.hpp"
#include "core/aggregator.hpp"
#include "net/packet.hpp"
#include "util/rng.hpp"

namespace {

using namespace scrubber;

int failures = 0;

void expect(bool ok, const char* what) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr, "FAIL: %s\n", what);
}

// --------------------------------------------------------------------------
// Baseline 1: the pre-rewrite FlowCache (node map + order counter).
// --------------------------------------------------------------------------

class BaselineFlowCache {
 public:
  explicit BaselineFlowCache(std::uint32_t sampling_rate)
      : sampling_rate_(sampling_rate) {}

  void add(const net::PacketHeader& packet) {
    net::FlowKey key;
    key.minute = static_cast<std::uint32_t>(packet.timestamp_ms / 60000);
    key.src_ip = packet.src_ip.value();
    key.dst_ip = packet.dst_ip.value();
    key.src_port = packet.src_port;
    key.dst_port = packet.dst_port;
    key.protocol = packet.protocol;
    key.member = packet.ingress_member;
    auto [it, inserted] = cache_.try_emplace(key);
    if (inserted) it->second.order = next_order_++;
    it->second.packets += 1;
    it->second.bytes += packet.length;
    it->second.tcp_flags |= packet.tcp_flags;
  }

  [[nodiscard]] std::vector<net::FlowRecord> drain_before(std::uint32_t minute) {
    std::vector<std::pair<std::uint64_t, net::FlowRecord>> drained;
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (it->first.minute < minute) {
        net::FlowRecord flow;
        flow.minute = it->first.minute;
        flow.src_ip = net::Ipv4Address(it->first.src_ip);
        flow.dst_ip = net::Ipv4Address(it->first.dst_ip);
        flow.src_port = it->first.src_port;
        flow.dst_port = it->first.dst_port;
        flow.protocol = it->first.protocol;
        flow.tcp_flags = it->second.tcp_flags;
        flow.src_member = it->first.member;
        flow.packets =
            static_cast<std::uint32_t>(it->second.packets * sampling_rate_);
        flow.bytes = it->second.bytes * sampling_rate_;
        drained.emplace_back(it->second.order, flow);
        it = cache_.erase(it);
      } else {
        ++it;
      }
    }
    std::sort(drained.begin(), drained.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<net::FlowRecord> out;
    out.reserve(drained.size());
    for (auto& [order, flow] : drained) out.push_back(flow);
    return out;
  }

 private:
  struct Counters {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint8_t tcp_flags = 0;
    std::uint64_t order = 0;
  };
  std::uint32_t sampling_rate_;
  std::uint64_t next_order_ = 0;
  std::unordered_map<net::FlowKey, Counters, net::FlowKeyHash> cache_;
};

// --------------------------------------------------------------------------
// Baseline 2: the pre-rewrite Aggregator::aggregate (std::map group-by,
// fresh unordered_map tallies, full sort per ranking).
// --------------------------------------------------------------------------

enum class Categorical : std::size_t {
  kSrcIp, kSrcPort, kDstPort, kSrcMember, kProtocol,
};
constexpr std::array<Categorical, 5> kCategoricals{
    Categorical::kSrcIp, Categorical::kSrcPort, Categorical::kDstPort,
    Categorical::kSrcMember, Categorical::kProtocol,
};
enum class Metric : std::size_t { kMeanPacketSize, kSumBytes, kSumPackets };
constexpr std::array<Metric, 3> kMetrics{
    Metric::kMeanPacketSize, Metric::kSumBytes, Metric::kSumPackets,
};

double categorical_value(const net::FlowRecord& flow, Categorical c) {
  switch (c) {
    case Categorical::kSrcIp: return static_cast<double>(flow.src_ip.value());
    case Categorical::kSrcPort: return static_cast<double>(flow.src_port);
    case Categorical::kDstPort: return static_cast<double>(flow.dst_port);
    case Categorical::kSrcMember: return static_cast<double>(flow.src_member);
    case Categorical::kProtocol: return static_cast<double>(flow.protocol);
  }
  return 0.0;
}

struct GroupMetrics {
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
  [[nodiscard]] double metric(Metric m) const {
    switch (m) {
      case Metric::kMeanPacketSize:
        return packets == 0 ? 0.0
                            : static_cast<double>(bytes) /
                                  static_cast<double>(packets);
      case Metric::kSumBytes: return static_cast<double>(bytes);
      case Metric::kSumPackets: return static_cast<double>(packets);
    }
    return 0.0;
  }
};

core::AggregatedDataset baseline_aggregate(
    std::span<const net::FlowRecord> flows) {
  core::AggregatedDataset out;
  out.data = ml::Dataset(core::Aggregator::schema());

  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::size_t>>
      groups;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    groups[{flows[i].minute, flows[i].dst_ip.value()}].push_back(i);
  }

  const std::size_t width = out.data.n_cols();
  std::vector<double> row(width);

  for (const auto& [key, indices] : groups) {
    std::fill(row.begin(), row.end(), ml::kMissing);
    std::size_t column = 0;
    for (const Categorical c : kCategoricals) {
      std::unordered_map<std::uint64_t, GroupMetrics> by_value;
      for (const std::size_t i : indices) {
        const auto value =
            static_cast<std::uint64_t>(categorical_value(flows[i], c));
        auto& group = by_value[value];
        group.bytes += flows[i].bytes;
        group.packets += flows[i].packets;
      }
      for (const Metric m : kMetrics) {
        std::vector<std::pair<double, std::uint64_t>> ranked;
        ranked.reserve(by_value.size());
        for (const auto& [value, metrics] : by_value)
          ranked.emplace_back(metrics.metric(m), value);
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) {
                    return a.first > b.first ||
                           (a.first == b.first && a.second < b.second);
                  });
        for (std::size_t r = 0; r < core::kRanks; ++r) {
          if (r < ranked.size()) {
            row[column] = static_cast<double>(ranked[r].second);
            row[column + 1] = ranked[r].first;
          }
          column += 2;
        }
      }
    }

    int label = 0;
    for (const std::size_t i : indices) {
      if (flows[i].blackholed) {
        label = 1;
        break;
      }
    }
    out.data.add_row(row, label);

    core::RecordMeta meta;
    meta.minute = key.first;
    meta.target = net::Ipv4Address(key.second);
    meta.flow_count = static_cast<std::uint32_t>(indices.size());

    std::unordered_map<std::size_t, std::uint64_t> vector_bytes;
    std::uint64_t total_bytes = 0;
    for (const std::size_t i : indices) {
      total_bytes += flows[i].bytes;
      if (const auto v = flows[i].vector()) {
        vector_bytes[static_cast<std::size_t>(*v)] += flows[i].bytes;
      }
    }
    if (!vector_bytes.empty()) {
      std::size_t best = 0;
      std::uint64_t best_bytes = 0;
      for (const auto& [v, bytes] : vector_bytes) {
        if (bytes > best_bytes || (bytes == best_bytes && v < best)) {
          best = v;
          best_bytes = bytes;
        }
      }
      if (best_bytes * 4 >= total_bytes) {
        meta.dominant_vector = static_cast<net::DdosVector>(best);
      }
    }
    out.meta.push_back(std::move(meta));
  }
  return out;
}

// --------------------------------------------------------------------------
// Workloads
// --------------------------------------------------------------------------

std::vector<net::PacketHeader> synth_packets(std::size_t count,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<net::PacketHeader> packets;
  packets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    net::PacketHeader p;
    // ~8 minutes, heavy-tailed flow sizes: popular flows see many packets
    // (the FlowCache steady state), the tail churns new keys.
    p.timestamp_ms = (i * 8 * 60000) / count + rng.below(2000);
    p.src_ip = net::Ipv4Address(
        static_cast<std::uint32_t>(0x0A000000 + rng.zipf(40000, 1.1)));
    p.dst_ip = net::Ipv4Address(
        static_cast<std::uint32_t>(0xC0A80000 + rng.zipf(2000, 1.2)));
    p.src_port = static_cast<std::uint16_t>(rng.below(50000));
    p.dst_port = static_cast<std::uint16_t>(
        rng.chance(0.5) ? 80 : rng.below(1024));
    p.protocol = rng.chance(0.7) ? 17 : 6;
    p.tcp_flags = static_cast<std::uint8_t>(rng.below(64));
    p.length = static_cast<std::uint16_t>(64 + rng.below(1400));
    p.ingress_member = static_cast<net::MemberId>(rng.below(64));
    packets.push_back(p);
  }
  return packets;
}

double checksum(std::span<const net::FlowRecord> flows) {
  std::uint64_t sum = 0;
  for (const auto& flow : flows) sum += flow.bytes + flow.packets;
  return static_cast<double>(sum);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = [&] {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--smoke") == 0) return true;
    }
    return false;
  }();
  bench::print_header("Hotpath",
                      "flow hot-path throughput (flat containers vs "
                      "node-based baselines)");
  bench::print_expectation(
      ">= 2x single-thread aggregate speedup over the node-container "
      "baseline; near-linear feature-build scaling to 4 threads");

  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const int repeats = smoke ? 1 : 5;
  const auto best_of = [&](auto&& fn) {
    return bench::min_seconds_of(repeats, fn);
  };

  util::JsonArray flowcache_rows;
  util::TextTable cache_table;
  cache_table.set_header({"packets", "baseline_s", "flat_s", "speedup",
                          "flows", "identical"});

  // ---- FlowCache: ingest + minute drains -------------------------------
  for (const std::size_t packet_count :
       smoke ? std::vector<std::size_t>{60'000}
             : std::vector<std::size_t>{200'000, 800'000}) {
    const auto packets = synth_packets(packet_count, 0xF10C);

    std::vector<net::FlowRecord> baseline_flows;
    const double baseline_seconds = best_of([&] {
      BaselineFlowCache cache(10);
      for (const auto& packet : packets) cache.add(packet);
      baseline_flows = cache.drain_before(
          std::numeric_limits<std::uint32_t>::max());
    });

    std::vector<net::FlowRecord> flat_flows;
    const double flat_seconds = best_of([&] {
      net::FlowCache cache(10);
      for (const auto& packet : packets) cache.add(packet);
      flat_flows = cache.drain_all();
    });

    const bool identical = flat_flows == baseline_flows;
    expect(identical, "FlowCache drain differs from baseline");
    // Flow conservation: every sampled packet lands in exactly one
    // drained record (scaled by the 1-in-10 sampling rate).
    std::uint64_t drained_packets = 0;
    for (const auto& flow : flat_flows) drained_packets += flow.packets;
    expect(drained_packets == packets.size() * 10,
           "FlowCache drained packet count != sampled packets x rate");

    const double speedup =
        flat_seconds > 0.0 ? baseline_seconds / flat_seconds : 0.0;
    char b_s[32], f_s[32], x_s[32];
    std::snprintf(b_s, sizeof(b_s), "%.3f", baseline_seconds);
    std::snprintf(f_s, sizeof(f_s), "%.3f", flat_seconds);
    std::snprintf(x_s, sizeof(x_s), "%.2f", speedup);
    cache_table.add_row({std::to_string(packet_count), b_s, f_s, x_s,
                         std::to_string(flat_flows.size()),
                         identical ? "yes" : "NO"});

    util::Json row;
    row.set("packets", static_cast<double>(packet_count));
    row.set("flows", static_cast<double>(flat_flows.size()));
    row.set("baseline_seconds", baseline_seconds);
    row.set("flat_seconds", flat_seconds);
    row.set("speedup", speedup);
    row.set("identical", identical);
    flowcache_rows.push_back(std::move(row));
  }
  std::printf("flowcache (ingest + drain, sampling 1/10, best of %d):\n%s\n",
              repeats, cache_table.render().c_str());

  // ---- Aggregate: {flow count} x {threads} sweep -----------------------
  // Balanced ground-truth attack traces: the shape Aggregator::aggregate
  // actually runs on (Scrubber::train feeds it balancer output), with
  // realistic per-target group sizes (tens of flows per (minute, target)
  // record) instead of the 1-2 flow groups of raw unfiltered traffic.
  std::vector<unsigned> sweep{1, 2};
  if (!smoke) {
    sweep.push_back(4);
    if (std::find(sweep.begin(), sweep.end(), hardware) == sweep.end()) {
      sweep.push_back(hardware);
    }
  }
  std::sort(sweep.begin(), sweep.end());

  util::JsonArray aggregate_rows;
  util::TextTable agg_table;
  agg_table.set_header({"flows", "records", "baseline_s", "threads", "flat_s",
                        "speedup", "scaling", "identical", "advisory"});

  for (const std::uint32_t minutes :
       smoke ? std::vector<std::uint32_t>{120}
             : std::vector<std::uint32_t>{240, 960}) {
    const std::vector<net::FlowRecord> balanced = [&] {
      flowgen::TrafficGenerator gen(flowgen::self_attack_profile(), 555);
      const auto trace = gen.generate(
          0, minutes, flowgen::TrafficGenerator::Labeling::kGroundTruth);
      return core::balance_trace(trace.flows, 99);
    }();
    const std::span<const net::FlowRecord> flows(balanced);
    const std::size_t take = flows.size();

    // Rep-major interleaving: every repeat times the baseline and every
    // thread count back to back, so machine drift (frequency, neighbors)
    // lands on all configurations instead of biasing one of them.
    core::AggregatedDataset baseline;
    std::vector<core::AggregatedDataset> results(sweep.size());
    double baseline_seconds = 0.0;
    std::vector<double> flat_seconds(sweep.size(), 0.0);
    for (int rep = 0; rep < repeats; ++rep) {
      {
        util::Stopwatch sw;
        baseline = baseline_aggregate(flows);
        const double seconds = sw.seconds();
        if (rep == 0 || seconds < baseline_seconds) {
          baseline_seconds = seconds;
        }
      }
      for (std::size_t ti = 0; ti < sweep.size(); ++ti) {
        core::Aggregator aggregator;
        aggregator.set_threads(sweep[ti]);
        util::Stopwatch sw;
        results[ti] = aggregator.aggregate(flows);
        const double seconds = sw.seconds();
        if (rep == 0 || seconds < flat_seconds[ti]) {
          flat_seconds[ti] = seconds;
        }
      }
    }

    core::AggregatedDataset reference;  // flat path at 1 thread
    double flat_1t_seconds = 0.0;
    for (std::size_t ti = 0; ti < sweep.size(); ++ti) {
      const unsigned threads = sweep[ti];
      const bool advisory = threads > hardware;
      const core::AggregatedDataset& result = results[ti];
      const double seconds = flat_seconds[ti];
      if (threads == 1) {
        flat_1t_seconds = seconds;
        reference = result;
        // Bit-identity vs the baseline: byte-equal matrix (NaN patterns
        // included), equal labels, equal grouping.
        const auto& got = result.data.raw();
        const auto& want = baseline.data.raw();
        expect(result.size() == baseline.size() && got.size() == want.size() &&
                   std::memcmp(got.data(), want.data(),
                               want.size() * sizeof(double)) == 0,
               "aggregate matrix differs from baseline");
        expect(result.data.labels() == baseline.data.labels(),
               "aggregate labels differ from baseline");
      }
      const auto& got = result.data.raw();
      const auto& want = reference.data.raw();
      const bool identical =
          result.size() == reference.size() && got.size() == want.size() &&
          std::memcmp(got.data(), want.data(),
                      want.size() * sizeof(double)) == 0 &&
          result.data.labels() == reference.data.labels();
      expect(identical, "aggregate output varies with thread count");

      const double speedup =
          seconds > 0.0 ? baseline_seconds / seconds : 0.0;
      const double scaling = seconds > 0.0 ? flat_1t_seconds / seconds : 0.0;
      char b_s[32], f_s[32], x_s[32], s_s[32];
      std::snprintf(b_s, sizeof(b_s), "%.3f", baseline_seconds);
      std::snprintf(f_s, sizeof(f_s), "%.3f", seconds);
      std::snprintf(x_s, sizeof(x_s), "%.2f", speedup);
      std::snprintf(s_s, sizeof(s_s), "%.2f", scaling);
      agg_table.add_row({std::to_string(take),
                         std::to_string(result.size()), b_s,
                         std::to_string(threads), f_s, x_s, s_s,
                         identical ? "yes" : "NO", advisory ? "yes" : ""});

      util::Json row;
      row.set("trace_minutes", static_cast<double>(minutes));
      row.set("flows", static_cast<double>(take));
      row.set("records", static_cast<double>(result.size()));
      row.set("threads", static_cast<double>(threads));
      row.set("advisory", advisory);
      row.set("baseline_seconds", baseline_seconds);
      row.set("flat_seconds", seconds);
      row.set("speedup_vs_baseline", speedup);
      row.set("scaling_vs_1t", scaling);
      row.set("identical", identical);
      aggregate_rows.push_back(std::move(row));
    }
    bench::keep_alive(static_cast<long long>(checksum(flows)));
  }
  std::printf("aggregate (feature build, best of %d):\n%s\n", repeats,
              agg_table.render().c_str());

  util::Json out;
  out.set("bench", "hotpath");
  bench::set_provenance(out);
  out.set("smoke", smoke);
  out.set("hardware_concurrency", static_cast<double>(hardware));
  out.set("flowcache", std::move(flowcache_rows));
  out.set("aggregate", std::move(aggregate_rows));
  // The smoke run is a correctness gate, not a perf record — don't
  // overwrite the trajectory file with tiny-trace numbers.
  if (!smoke) {
    std::ofstream file("BENCH_hotpath.json");
    file << out.dump(2) << "\n";
    std::printf("wrote BENCH_hotpath.json (hardware_concurrency=%u)\n",
                hardware);
  }
  if (failures != 0) {
    std::fprintf(stderr, "\n%d hot-path check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("all hot-path identity checks passed\n");
  return 0;
}
