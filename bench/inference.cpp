// SIMD scoring hot path — wall time of CompiledForest::margin_batch over
// the scalar lockstep oracle vs the AVX2 lane-table kernel, on the same
// padded row-major batches LiveDetector assembles (DESIGN.md §13).
//
// Sweep: {rows} x {trees} x {depth} x {scalar, avx2}. Forests are fully
// balanced random trees (every root-to-leaf path is exactly `depth`
// steps, the worst case for the lockstep descent), rows draw from the
// same adversarial pool the property tests use: ~15% NaN (missing)
// cells, values exactly on split thresholds, and feature indices one
// past the row width. Results land in BENCH_inference.json.
//
// Expectation: >= 2x single-thread speedup of the AVX2 kernel over the
// scalar oracle on the large configurations (4 rows per vector, minus
// gather latency). A smaller ratio is recorded, printed and NOT a
// failure — gather-bound hosts (and especially downclocked or emulated
// AVX2) legitimately cap below 2x; the JSON keeps the CPU feature
// provenance so trajectory readers can tell those hosts apart.
//
// Every run is also a correctness probe: for every configuration the
// scalar batch is compared bit-for-bit against per-row margin() (the
// training-side walk), and the AVX2 batch bit-for-bit against the
// scalar batch, row by row. Any mismatch fails the run. `--smoke`
// shrinks the sweep while keeping all assertions — the mode the
// perf-smoke CI job runs (no JSON write: tiny-batch numbers must not
// overwrite the trajectory).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <vector>

#include "../bench/common.hpp"
#include "ml/compiled_tree.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace scrubber;

int failures = 0;

void expect(bool ok, const char* what) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr, "FAIL: %s\n", what);
}

// Same discrete pool as tests/ml/compiled_tree_test.cpp: thresholds and
// cells collide so `v <= t` regularly lands exactly on the boundary, and
// -1.0 doubles as the missing/out-of-range substitute.
constexpr double kPool[] = {-3.7, -1.0, 0.0, 0.5, 1.0, 2.5, 1e9};

struct BenchNode {
  double threshold = 0.0;
  double value = 0.0;
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::uint32_t feature = 0;
};

/// Grows a perfectly balanced subtree of exactly `depth` levels; features
/// occasionally index one past the row width (out-of-range -> -1.0 rule).
std::int32_t grow_full(std::vector<BenchNode>& nodes, util::Rng& rng,
                       std::uint32_t width, int depth) {
  const std::size_t index = nodes.size();
  nodes.emplace_back();
  if (depth == 0) {
    nodes[index].value = rng.uniform(-2.0, 2.0);
    return static_cast<std::int32_t>(index);
  }
  nodes[index].feature = static_cast<std::uint32_t>(rng.below(width + 1));
  nodes[index].threshold = kPool[rng.below(std::size(kPool))];
  const std::int32_t left = grow_full(nodes, rng, width, depth - 1);
  const std::int32_t right = grow_full(nodes, rng, width, depth - 1);
  nodes[index].left = left;
  nodes[index].right = right;
  return static_cast<std::int32_t>(index);
}

ml::CompiledForest random_forest(util::Rng& rng, std::size_t trees,
                                 std::uint32_t width, int depth) {
  std::vector<std::vector<BenchNode>> grown(trees);
  for (auto& tree : grown) grow_full(tree, rng, width, depth);
  return ml::CompiledForest::compile(grown, rng.uniform(-1.0, 1.0));
}

/// Row-major batch padded to a multiple of kSimdLaneRows rows (the padded
/// assembly LiveDetector uses), so the vector kernel covers the ragged
/// tail; `n` itself is deliberately not a multiple of the lane count.
std::vector<double> random_rows(util::Rng& rng, std::size_t n,
                                std::size_t width) {
  const std::size_t padded =
      (n + ml::kSimdLaneRows - 1) / ml::kSimdLaneRows * ml::kSimdLaneRows;
  std::vector<double> rows(padded * width, 0.0);
  for (std::size_t i = 0; i < n * width; ++i) {
    rows[i] = rng.chance(0.15) ? std::nan("")
                               : kPool[rng.below(std::size(kPool))];
  }
  return rows;
}

struct Config {
  std::size_t rows;
  std::size_t trees;
  int depth;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = [&] {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--smoke") == 0) return true;
    }
    return false;
  }();
  bench::print_header("Inference",
                      "SIMD scoring hot path (AVX2 lane-table kernel vs "
                      "the scalar lockstep oracle)");
  bench::print_expectation(
      ">= 2x single-thread margin_batch speedup on the large "
      "configurations; bit-identical outputs everywhere");

  const bool avx2 =
      util::simd_compiled_avx2() && util::cpu_has_avx2();
  std::printf("dispatch: compiled_avx2=%s cpu_avx2=%s -> %s\n\n",
              util::simd_compiled_avx2() ? "yes" : "no",
              util::cpu_has_avx2() ? "yes" : "no",
              avx2 ? "comparing scalar vs avx2"
                   : "scalar only (vector kernel unavailable)");

  const std::vector<Config> sweep =
      smoke ? std::vector<Config>{{4'093, 16, 6}}
            : std::vector<Config>{{8'191, 16, 4},   {8'191, 16, 8},
                                  {8'191, 128, 4},  {8'191, 128, 8},
                                  {65'521, 16, 4},  {65'521, 16, 8},
                                  {65'521, 128, 4}, {65'521, 128, 8}};
  constexpr std::uint32_t kWidth = 24;
  const int repeats = smoke ? 1 : 5;

  util::JsonArray json_rows;
  util::TextTable table;
  table.set_header({"rows", "trees", "depth", "scalar_s", "avx2_s", "speedup",
                    "Mrows/s", "identical"});

  util::Rng rng(0x51D0BEEF);
  double large_speedup = 0.0;
  for (const Config& config : sweep) {
    const ml::CompiledForest forest =
        random_forest(rng, config.trees, kWidth, config.depth);
    const std::vector<double> rows = random_rows(rng, config.rows, kWidth);

    std::vector<double> scalar_out(config.rows);
    std::vector<double> avx2_out(config.rows);

    const auto timed = [&](util::SimdLevel level, std::span<double> out) {
      util::set_simd_override(level);
      double best = 0.0;
      for (int rep = 0; rep < repeats; ++rep) {
        util::Stopwatch sw;
        forest.margin_batch(rows, kWidth, out);
        const double seconds = sw.seconds();
        if (rep == 0 || seconds < best) best = seconds;
      }
      util::clear_simd_override();
      return best;
    };

    const double scalar_seconds =
        timed(util::SimdLevel::kScalar, scalar_out);
    const double avx2_seconds =
        avx2 ? timed(util::SimdLevel::kAvx2, avx2_out) : 0.0;

    // Scalar batch vs the per-row walk: the oracle of the oracle.
    bool scalar_ok = true;
    for (std::size_t i = 0; i < config.rows; ++i) {
      const std::span<const double> row(rows.data() + i * kWidth, kWidth);
      const double want = forest.margin(row);
      if (std::memcmp(&scalar_out[i], &want, sizeof(double)) != 0) {
        scalar_ok = false;
        break;
      }
    }
    expect(scalar_ok, "scalar margin_batch differs from per-row margin()");

    // AVX2 batch vs scalar batch, bit for bit, every row.
    bool identical = true;
    if (avx2) {
      identical = std::memcmp(scalar_out.data(), avx2_out.data(),
                              config.rows * sizeof(double)) == 0;
      expect(identical, "avx2 margin_batch differs from scalar oracle");
    }

    const double speedup =
        avx2 && avx2_seconds > 0.0 ? scalar_seconds / avx2_seconds : 0.0;
    const double fast_seconds = avx2 ? avx2_seconds : scalar_seconds;
    const double mrows =
        fast_seconds > 0.0
            ? static_cast<double>(config.rows) / fast_seconds / 1e6
            : 0.0;
    if (!smoke && config.rows > 10'000 && config.trees >= 128 &&
        speedup > large_speedup) {
      large_speedup = speedup;
    }

    char sc[32], av[32] = "-", xs[32] = "-", mr[32];
    std::snprintf(sc, sizeof(sc), "%.4f", scalar_seconds);
    if (avx2) {
      std::snprintf(av, sizeof(av), "%.4f", avx2_seconds);
      std::snprintf(xs, sizeof(xs), "%.2f", speedup);
    }
    std::snprintf(mr, sizeof(mr), "%.2f", mrows);
    table.add_row({std::to_string(config.rows), std::to_string(config.trees),
                   std::to_string(config.depth), sc, av, xs, mr,
                   scalar_ok && identical ? "yes" : "NO"});

    util::Json row;
    row.set("rows", static_cast<double>(config.rows));
    row.set("trees", static_cast<double>(config.trees));
    row.set("depth", static_cast<double>(config.depth));
    row.set("scalar_seconds", scalar_seconds);
    row.set("avx2_seconds", avx2_seconds);
    row.set("speedup", speedup);
    row.set("mrows_per_second", mrows);
    row.set("identical", scalar_ok && identical);
    json_rows.push_back(std::move(row));
    bench::keep_alive(static_cast<long long>(scalar_out.size()));
  }
  std::printf("margin_batch (best of %d):\n%s\n", repeats,
              table.render().c_str());
  if (!smoke && avx2) {
    if (large_speedup >= 2.0) {
      std::printf("large-config speedup %.2fx meets the >= 2x target\n",
                  large_speedup);
    } else {
      std::printf(
          "NOTE: large-config speedup %.2fx is below the 2x target — "
          "gather-bound host; see cpu provenance in BENCH_inference.json\n",
          large_speedup);
    }
  }

  util::Json out;
  out.set("bench", "inference");
  bench::set_provenance(out);
  out.set("smoke", smoke);
  out.set("avx2_available", avx2);
  out.set("feature_width", static_cast<double>(kWidth));
  out.set("large_config_speedup", large_speedup);
  out.set("margin_batch", std::move(json_rows));
  // The smoke run is a correctness gate, not a perf record — don't
  // overwrite the trajectory file with tiny-batch numbers.
  if (!smoke) {
    std::ofstream file("BENCH_inference.json");
    file << out.dump(2) << "\n";
    std::printf("wrote BENCH_inference.json\n");
  }
  if (failures != 0) {
    std::fprintf(stderr, "\n%d inference identity check(s) FAILED\n",
                 failures);
    return 1;
  }
  std::printf("all inference identity checks passed\n");
  return 0;
}
