// §5.1.3 — interpretability study with operators: subjects curate the
// rules mined from the SAS and the resulting accept-set is matched back
// against ground truth. Paper: subjects correctly drop 76.73% of DDoS
// traffic while dropping only 0.43% of benign traffic, in ~6.6 minutes.
//
// The human subjects are modeled as threshold policies with differing
// strictness plus a small per-rule error rate (operators occasionally
// misjudge a rule) — the measurable quantities are the same two rates.

#include "../bench/common.hpp"

#include "arm/rules.hpp"

namespace {

using namespace scrubber;

/// A simulated study subject: accepts rules above a personal confidence
/// bar, flipping each decision with probability `error_rate`. All subjects
/// apply the same piece of domain knowledge the paper's experts bring:
/// a reflection-attack filter must pin the reflector's source port (or
/// match fragments) — rules without such an item would blanket-drop
/// legitimate traffic and are declined regardless of mined confidence
/// (confidence on the attack-dense SAS overstates broad rules).
struct Subject {
  const char* name;
  double confidence_bar;
  double error_rate;
};

bool is_deployable(const arm::TaggingRule& rule) {
  for (const arm::Item item : rule.rule.antecedent) {
    if (item.attribute() == arm::Attribute::kSrcPort ||
        item.attribute() == arm::Attribute::kFragment) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main() {
  bench::print_header("Operator study (§5.1.3)",
                      "curated rule sets matched against SAS ground truth");
  bench::print_expectation(
      "subjects drop a large majority of DDoS traffic (~77% in the paper) "
      "at near-zero benign drop (~0.4%)");

  // Rules are mined on the SAS, as in the study.
  const auto sas = bench::make_balanced(
      flowgen::self_attack_profile(), 555, 0, 2 * 24 * 60,
      flowgen::TrafficGenerator::Labeling::kGroundTruth);
  core::ScrubberConfig config;
  config.mining.min_support = 0.005;
  core::IxpScrubber scrubber(config);
  auto mined = scrubber.mine_tagging_rules(sas.flows);
  std::printf("rules presented to subjects: %zu (paper: 38)\n\n", mined.size());

  // Fresh evaluation traffic from the same setup (disjoint time range).
  const auto eval = bench::make_balanced(
      flowgen::self_attack_profile(), 556, 10 * 24 * 60, 24 * 60,
      flowgen::TrafficGenerator::Labeling::kGroundTruth);

  const Subject subjects[] = {
      {"operator-1", 0.90, 0.02}, {"operator-2", 0.92, 0.05},
      {"author-1", 0.88, 0.08},   {"author-2", 0.95, 0.05},
      {"author-3", 0.85, 0.10},
  };

  util::TextTable table;
  table.set_header({"subject", "#accepted", "DDoS dropped", "benign dropped"});
  double mean_ddos = 0.0, mean_benign = 0.0;
  util::Rng rng(77);
  const arm::Itemizer itemizer;
  for (const auto& subject : subjects) {
    arm::RuleSet curated = mined;
    std::size_t accepted = 0;
    for (auto& rule : curated.rules()) {
      const bool deployable = is_deployable(rule);
      bool accept = deployable && rule.rule.confidence >= subject.confidence_bar;
      // Subjects err on borderline judgements (confidence calls), never on
      // the hard domain rule — no expert accepts a filter that would
      // blanket-drop legitimate traffic.
      if (deployable && rng.chance(subject.error_rate)) accept = !accept;
      rule.status = accept ? arm::RuleStatus::kAccepted : arm::RuleStatus::kDeclined;
      accepted += accept;
    }
    std::uint64_t ddos = 0, ddos_dropped = 0, benign = 0, benign_dropped = 0;
    for (const auto& flow : eval.flows) {
      const bool dropped = curated.any_accepted_match(flow, itemizer);
      if (flow.blackholed) {
        ++ddos;
        ddos_dropped += dropped;
      } else {
        ++benign;
        benign_dropped += dropped;
      }
    }
    const double ddos_rate = static_cast<double>(ddos_dropped) / ddos;
    const double benign_rate = static_cast<double>(benign_dropped) / benign;
    mean_ddos += ddos_rate;
    mean_benign += benign_rate;
    table.add_row({subject.name, util::fmt_count(accepted),
                   util::fmt_pct(ddos_rate), util::fmt_pct(benign_rate)});
  }
  table.add_row({"mean", "-", util::fmt_pct(mean_ddos / 5.0),
                 util::fmt_pct(mean_benign / 5.0)});
  std::fputs(table.render().c_str(), stdout);
  std::printf("(paper means: 76.73%% DDoS dropped, 0.43%% benign dropped)\n");
  return 0;
}
