// Figure 4a — service distribution: share of well-known DDoS ports across
// the benign class, the blackholing class (ML training set, all IXPs), and
// the self-attack set. Paper: benign ~7.5% vs blackholing ~87.5%; the
// blackholing and self-attack classes carry an order of magnitude more UDP
// fragments than benign.

#include <array>
#include <map>

#include "../bench/common.hpp"

namespace {

struct ClassStats {
  std::uint64_t flows = 0;
  std::uint64_t ddos_port_flows = 0;
  std::uint64_t fragment_flows = 0;
  std::map<scrubber::net::DdosVector, std::uint64_t> per_vector;

  void add(const scrubber::net::FlowRecord& flow) {
    ++flows;
    if (const auto v = flow.vector()) {
      ++ddos_port_flows;
      ++per_vector[*v];
      if (*v == scrubber::net::DdosVector::kUdpFragment) ++fragment_flows;
    }
  }

  [[nodiscard]] double ddos_share() const {
    return flows == 0 ? 0.0
                      : static_cast<double>(ddos_port_flows) /
                            static_cast<double>(flows);
  }
  [[nodiscard]] double fragment_share() const {
    return flows == 0 ? 0.0
                      : static_cast<double>(fragment_flows) /
                            static_cast<double>(flows);
  }
};

}  // namespace

int main() {
  using namespace scrubber;
  bench::print_header("Figure 4a",
                      "share of well-known DDoS ports per traffic class");
  bench::print_expectation(
      "benign ~7.5% DDoS ports; blackholing >~80%; SAS highest; blackholing "
      "and SAS carry ~10x the benign UDP-fragment share");

  ClassStats benign, blackhole, sas;

  std::uint64_t seed = 4242;
  for (const auto& profile : flowgen::all_ixp_profiles()) {
    const std::uint32_t minutes =
        profile.benign_flows_per_minute > 1000.0 ? 24 * 60 : 2 * 24 * 60;
    const auto trace = bench::make_balanced(profile, seed++, 0, minutes);
    for (const auto& flow : trace.flows) {
      (flow.blackholed ? blackhole : benign).add(flow);
    }
  }
  const auto sas_trace = bench::make_balanced(
      flowgen::self_attack_profile(), seed++, 0, 24 * 60,
      flowgen::TrafficGenerator::Labeling::kGroundTruth);
  for (const auto& flow : sas_trace.flows) {
    if (flow.blackholed) sas.add(flow);  // SAS baseline: attack flows only
  }

  util::TextTable table;
  table.set_header({"class", "flows", "DDoS-port share", "UDP-fragm. share"});
  table.add_row({"benign (ML set)", util::fmt_count(benign.flows),
                 util::fmt_pct(benign.ddos_share()),
                 util::fmt_pct(benign.fragment_share())});
  table.add_row({"blackholing (ML set)", util::fmt_count(blackhole.flows),
                 util::fmt_pct(blackhole.ddos_share()),
                 util::fmt_pct(blackhole.fragment_share())});
  table.add_row({"self-attack (SAS)", util::fmt_count(sas.flows),
                 util::fmt_pct(sas.ddos_share()),
                 util::fmt_pct(sas.fragment_share())});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nper-vector share within each class:\n");
  util::TextTable vectors;
  vectors.set_header({"vector", "benign", "blackholing", "SAS"});
  for (const auto& sig : net::vector_signatures()) {
    const auto share = [&](const ClassStats& c) {
      const auto it = c.per_vector.find(sig.vector);
      const std::uint64_t n = it == c.per_vector.end() ? 0 : it->second;
      return util::fmt_pct(c.flows == 0 ? 0.0
                                        : static_cast<double>(n) /
                                              static_cast<double>(c.flows));
    };
    vectors.add_row({std::string(net::vector_name(sig.vector)), share(benign),
                     share(blackhole), share(sas)});
  }
  std::fputs(vectors.render().c_str(), stdout);
  return 0;
}
