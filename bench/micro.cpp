// Microbenchmarks (google-benchmark) for the hot paths of the pipeline:
// prefix-trie longest-prefix match, blackhole-registry labeling, flow
// itemization, WoE encoding, aggregation, FP-Growth mining, and per-model
// single-record prediction.

#include <benchmark/benchmark.h>

#include "arm/fpgrowth.hpp"
#include "arm/item.hpp"
#include "bgp/blackhole_registry.hpp"
#include "core/aggregator.hpp"
#include "core/balancer.hpp"
#include "flowgen/generator.hpp"
#include "ml/pipeline.hpp"
#include "net/prefix_trie.hpp"

namespace {

using namespace scrubber;

std::vector<net::FlowRecord> sample_flows(std::size_t minutes = 240) {
  flowgen::TrafficGenerator gen(flowgen::ixp_us1(), 9001);
  const auto trace = gen.generate(0, static_cast<std::uint32_t>(minutes));
  return trace.flows;
}

void BM_PrefixTrieMatch(benchmark::State& state) {
  util::Rng rng(1);
  net::PrefixTrie<int> trie;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    trie.insert(net::Ipv4Prefix(net::Ipv4Address(static_cast<std::uint32_t>(rng())),
                                static_cast<std::uint8_t>(rng.range(8, 32))),
                i);
  }
  std::uint32_t probe = 12345;
  for (auto _ : state) {
    probe = probe * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(trie.match(net::Ipv4Address(probe)));
  }
}
BENCHMARK(BM_PrefixTrieMatch)->Arg(100)->Arg(3000)->Arg(30000);

void BM_RegistryIsBlackholed(benchmark::State& state) {
  util::Rng rng(2);
  bgp::BlackholeRegistry registry;
  for (int i = 0; i < 3000; ++i) {
    registry.announce(
        net::Ipv4Prefix::host(net::Ipv4Address(static_cast<std::uint32_t>(rng()))),
        static_cast<std::uint32_t>(rng.below(10000)));
  }
  std::uint32_t probe = 777;
  for (auto _ : state) {
    probe = probe * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(registry.is_blackholed(net::Ipv4Address(probe), 5000));
  }
}
BENCHMARK(BM_RegistryIsBlackholed);

void BM_Itemize(benchmark::State& state) {
  const auto flows = sample_flows(30);
  const arm::Itemizer itemizer;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(itemizer.itemize(flows[i % flows.size()]));
    ++i;
  }
}
BENCHMARK(BM_Itemize);

void BM_FpGrowthMine(benchmark::State& state) {
  const auto flows = sample_flows(480);
  const auto balanced = core::balance_trace(flows, 1);
  const arm::Itemizer itemizer;
  std::vector<arm::Transaction> transactions;
  transactions.reserve(balanced.size());
  for (const auto& flow : balanced) transactions.push_back(itemizer.itemize(flow));
  arm::FpGrowthParams params;
  params.min_support = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arm::mine_rules(transactions, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(transactions.size()));
}
BENCHMARK(BM_FpGrowthMine);

void BM_BalanceMinute(benchmark::State& state) {
  const auto flows = sample_flows(60);
  // Group by minute once.
  std::vector<std::pair<std::size_t, std::size_t>> bins;
  std::size_t start = 0;
  while (start < flows.size()) {
    std::size_t end = start;
    while (end < flows.size() && flows[end].minute == flows[start].minute) ++end;
    bins.emplace_back(start, end);
    start = end;
  }
  std::size_t b = 0;
  for (auto _ : state) {
    core::Balancer balancer(b);
    const auto [lo, hi] = bins[b % bins.size()];
    balancer.add_minute(flows[lo].minute,
                        std::span<const net::FlowRecord>(flows.data() + lo, hi - lo));
    benchmark::DoNotOptimize(balancer.balanced().size());
    ++b;
  }
}
BENCHMARK(BM_BalanceMinute);

void BM_Aggregate(benchmark::State& state) {
  const auto flows = sample_flows(240);
  const auto balanced = core::balance_trace(flows, 1);
  const core::Aggregator aggregator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(aggregator.aggregate(balanced));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(balanced.size()));
}
BENCHMARK(BM_Aggregate);

/// Single-record prediction latency per model (the mcc column's substance).
void BM_PipelinePredict(benchmark::State& state) {
  static const auto data = [] {
    const auto flows = sample_flows(36 * 60);
    const auto balanced = core::balance_trace(flows, 1);
    const core::Aggregator aggregator;
    return aggregator.aggregate(balanced);
  }();
  const auto kind = static_cast<ml::ModelKind>(state.range(0));
  ml::Pipeline pipeline = ml::make_model_pipeline(kind);
  pipeline.fit(data.data);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.predict(data.data.row(i % data.size())));
    ++i;
  }
  state.SetLabel(std::string(ml::model_kind_name(kind)));
}
BENCHMARK(BM_PipelinePredict)
    ->Arg(static_cast<int>(ml::ModelKind::kXgb))
    ->Arg(static_cast<int>(ml::ModelKind::kDecisionTree))
    ->Arg(static_cast<int>(ml::ModelKind::kLinearSvm))
    ->Arg(static_cast<int>(ml::ModelKind::kNeuralNet))
    ->Arg(static_cast<int>(ml::ModelKind::kNaiveBayesGaussian));

}  // namespace
